"""Batched link-booking API: bit-identity with per-message booking,
closed-form occupancy scan, and the async-region issue-at-time hook."""

import numpy as np
import pytest

from repro.comm import NetworkModel, run_spmd

RUNNERS = ("coop", "threads")


# ---------------------------------------------------------------------------
# NetworkModel scan primitives
# ---------------------------------------------------------------------------
def _fold(free, avail, nwords, beta):
    """Reference scalar fold: end_i = max(end_{i-1}, avail_i) + b_i."""
    end = free
    starts, ends = [], []
    for a, n in zip(avail, nwords):
        if a > end:
            end = a
        starts.append(end)
        end = end + beta * float(n)
        ends.append(end)
    return np.array(starts), np.array(ends)


class TestSerializeBatch:
    def _random_case(self, rng, n):
        free = float(rng.uniform(0, 1e-3))
        avail = np.sort(rng.uniform(0, 2e-3, size=n))
        nwords = rng.integers(0, 5000, size=n)
        return free, avail, nwords

    @pytest.mark.parametrize("seed", range(8))
    def test_bitwise_identical_to_scalar_fold(self, seed):
        """serialize_batch must reproduce message-by-message booking
        exactly (not approximately) in every regime: saturated, idle and
        mixed batches all hit it through waitall/isend_batch."""
        m = NetworkModel()
        rng = np.random.default_rng(seed)
        for n in (1, 2, 7, 40):
            free, avail, nwords = self._random_case(rng, n)
            starts, ends = m.serialize_batch(free, avail, nwords)
            ref_s, ref_e = _fold(free, avail, nwords, m.beta)
            assert np.array_equal(starts, ref_s)
            assert np.array_equal(ends, ref_e)

    def test_saturated_regime(self):
        m = NetworkModel()
        nwords = np.array([1000, 2000, 500])
        avail = np.zeros(3)
        starts, ends = m.serialize_batch(1.0, avail, nwords)
        ref_s, ref_e = _fold(1.0, avail, nwords, m.beta)
        assert np.array_equal(ends, ref_e) and np.array_equal(starts, ref_s)

    def test_idle_regime(self):
        m = NetworkModel()
        nwords = np.array([10, 10, 10])
        avail = np.array([1.0, 2.0, 3.0])
        starts, ends = m.serialize_batch(0.0, avail, nwords)
        assert np.array_equal(starts, avail)
        assert np.array_equal(ends, avail + m.beta * nwords)

    def test_empty_batch(self):
        m = NetworkModel()
        starts, ends = m.serialize_batch(0.5, np.empty(0), np.empty(0))
        assert starts.size == 0 and ends.size == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_occupancy_scan_matches_fold_analytically(self, seed):
        """The cumsum/maximum.accumulate closed form agrees with the fold
        to fp re-association tolerance (it is the analytic view of the
        same serialization)."""
        m = NetworkModel()
        rng = np.random.default_rng(100 + seed)
        free, avail, nwords = self._random_case(rng, 50)
        ends = m.occupancy_scan(free, avail, nwords)
        _, ref = _fold(free, avail, nwords, m.beta)
        np.testing.assert_allclose(ends, ref, rtol=1e-12)


# ---------------------------------------------------------------------------
# isend_batch == sequential isend (clocks, traffic, payloads)
# ---------------------------------------------------------------------------
def _exchange_prog(comm, batched):
    p, r = comm.size, comm.rank
    rng = np.random.default_rng(r)
    total = 0.0
    for _ in range(3):
        reqs, sends = [], []
        for s in range(1, p):
            reqs.append(comm.irecv((r - s) % p, 9))
            payload = rng.normal(
                size=int(rng.integers(1, 3000))).astype(np.float32)
            if batched:
                sends.append((payload, (r + s) % p, 9))
            else:
                reqs.append(comm.isend(payload, (r + s) % p, 9))
        if batched:
            reqs.extend(comm.isend_batch(sends))
        got = comm.waitall(reqs)
        total += sum(float(g.sum()) for g in got if g is not None)
        comm.compute(1e-7 * r)  # stagger clocks -> mixed link regimes
    return total, comm.clock


class TestIsendBatch:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_bit_identical_to_isend_loop(self, runner):
        for model in (NetworkModel(),
                      NetworkModel(o_inject=3e-8, o_send=1e-8),
                      NetworkModel.commodity()):
            seq = run_spmd(5, _exchange_prog, False, model=model,
                           runner=runner)
            bat = run_spmd(5, _exchange_prog, True, model=model,
                           runner=runner)
            assert list(seq.results) == list(bat.results)
            assert [seq.network.clocks[i] for i in range(5)] == \
                   [bat.network.clocks[i] for i in range(5)]
            for field in ("words_sent", "words_recv", "msgs_sent",
                          "msgs_recv"):
                assert np.array_equal(getattr(seq.stats, field),
                                      getattr(bat.stats, field))

    def test_empty_batch_is_noop(self):
        def prog(comm):
            clock0 = comm.clock
            assert comm.isend_batch([]) == []
            return comm.clock == clock0

        assert all(run_spmd(2, prog).results)

    def test_wakes_blocked_receiver(self):
        """A rank already parked in recv() must be woken by a message
        posted mid-batch (the engine's on_post_batch hook)."""
        def prog(comm):
            if comm.rank == 0:
                payloads = [(np.full(4, i, np.float32), 1, i)
                            for i in range(3)]
                for req in comm.isend_batch(payloads):
                    req.wait()
                return None
            # rank 1 blocks on the *last* tag first
            out = [comm.recv(0, tag) for tag in (2, 0, 1)]
            return [float(v[0]) for v in out]

        res = run_spmd(2, prog)
        assert res[1] == [2.0, 0.0, 1.0]

    def test_loaned_buffer_write_locked_in_flight(self):
        """Zero-copy loans survive the batched path: mutating a sent
        buffer before delivery raises instead of corrupting the
        receiver."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(64, dtype=np.float32)
                comm.isend_batch([(buf, 1, 0)])
                with pytest.raises(ValueError):
                    buf[0] = 7.0          # on loan: write-locked
                comm.send(None, 1, 1)     # let the receiver proceed
                return None
            comm.recv(0, 1)
            got = comm.recv(0, 0)
            return float(got.sum())

        assert run_spmd(2, prog)[1] == 64.0


# ---------------------------------------------------------------------------
# AsyncRegion: issue-at-time hook
# ---------------------------------------------------------------------------
class TestAsyncRegion:
    def test_rewinds_clock_and_keeps_bookings(self):
        def prog(comm):
            peer = 1 - comm.rank
            t0 = comm.clock
            with comm.async_region() as region:
                comm.send(np.ones(1000, np.float32), peer, 0)
                comm.recv(peer, 0)
            assert region.issue == t0
            assert region.finish > t0
            assert comm.clock == t0          # rolled back
            # the egress link stayed booked: a later message queues
            # behind the region's transfer
            msg, _ = comm.net.post(comm.rank, peer, 1, None, 10, comm.clock)
            assert msg.t_start_tx >= region.issue
            comm.recv(peer, 1)
            # joining the region moves the clock forward again
            comm._advance_clock(region.finish)
            assert comm.clock >= region.finish
            return True

        assert all(run_spmd(2, prog).results)

    def test_exception_leaves_clock_in_place(self):
        def prog(comm):
            comm.compute(1.0)
            try:
                with comm.async_region():
                    comm.compute(2.0)
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            return comm.clock

        assert run_spmd(1, prog)[0] == pytest.approx(3.0)
