"""Gradient-space partitioning: equal vs balanced boundaries."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.sparse import (
    balanced_boundaries_local,
    equal_boundaries,
    imbalance,
    region_counts,
    region_of,
    sanitize_boundaries,
    validate_boundaries,
)


class TestEqualBoundaries:
    def test_partitions_whole_range(self):
        b = equal_boundaries(100, 4)
        np.testing.assert_array_equal(b, [0, 25, 50, 75, 100])

    def test_uneven(self):
        b = equal_boundaries(10, 3)
        assert b[0] == 0 and b[-1] == 10
        assert np.all(np.diff(b) >= 3)

    def test_invalid(self):
        with pytest.raises(PartitionError):
            equal_boundaries(10, 0)


class TestBalancedBoundaries:
    def test_balances_clustered_indices(self):
        """All top-k indices in the first 10% of the space: the equal split
        puts them all in region 0; the balanced split spreads them."""
        n, p = 1000, 4
        idx = np.arange(0, 100)  # clustered
        eq = equal_boundaries(n, p)
        assert imbalance(eq, idx) == pytest.approx(p)  # worst case
        bal = sanitize_boundaries(balanced_boundaries_local(idx, n, p), n)
        assert imbalance(bal, idx) < 1.2

    def test_uniform_indices_stay_roughly_equal(self):
        n, p = 1000, 4
        rng = np.random.default_rng(0)
        idx = np.sort(rng.choice(n, size=200, replace=False))
        bal = sanitize_boundaries(balanced_boundaries_local(idx, n, p), n)
        counts = region_counts(bal, idx)
        assert counts.max() - counts.min() <= 0.2 * counts.mean() + 2

    def test_empty_selection_degenerates_to_equal(self):
        b = balanced_boundaries_local(np.empty(0, np.int32), 100, 4)
        np.testing.assert_allclose(b, [0, 25, 50, 75, 100])

    def test_consensus_averaging_of_two_proposals(self):
        n, p = 100, 2
        a = balanced_boundaries_local(np.arange(0, 20), n, p)
        b = balanced_boundaries_local(np.arange(80, 100), n, p)
        avg = sanitize_boundaries((a + b) / 2, n)
        validate_boundaries(avg, n)
        # midpoint should sit between the two clusters
        assert 10 <= avg[1] <= 90


class TestSanitize:
    def test_forces_monotonic_and_range(self):
        out = sanitize_boundaries(np.array([5.0, 3.0, 200.0]), 100)
        validate_boundaries(out, 100)
        assert out[0] == 0 and out[-1] == 100

    def test_region_of_assignment(self):
        b = np.array([0, 10, 20, 30])
        idx = np.array([0, 9, 10, 19, 20, 29])
        np.testing.assert_array_equal(region_of(b, idx), [0, 0, 1, 1, 2, 2])

    def test_validate_rejects_bad_span(self):
        with pytest.raises(PartitionError):
            validate_boundaries(np.array([0, 5, 9]), 10)

    def test_validate_rejects_decreasing(self):
        with pytest.raises(PartitionError):
            validate_boundaries(np.array([0, 7, 5, 10]), 10)

    def test_empty_region_allowed(self):
        validate_boundaries(np.array([0, 0, 10]), 10)
