"""Generator (continuation-passing) engine tests.

The ``"gen"`` runner executes rank programs written as *generators* that
yield zero-argument thunks at their blocking points; a single trampoline
thread retries a parked thunk when its wake condition arrives, mirroring
the threaded engine's post-wake paths exactly.  The same generator source
also runs under the cooperative and threaded runners via
:func:`repro.comm.engine.drive_program` (the launcher wraps it
automatically), which is what makes the multi-way bit-identity oracle
possible: every assertion here compares results, traffic counters and
simulated makespans across runners with exact equality.
"""

import numpy as np
import pytest

from repro.comm import Call, drive_program, resolve_runner, run_spmd
from repro.comm import collectives as coll
from repro.comm.faults import FaultPlan, RankCrash
from repro.errors import DeadlockError, RankFailedError, SimulatedRankCrash
from repro.sparse import COOVector

RUNNERS = ("gen", "coop", "threads")


def _run_all(p, prog, *args, **kwargs):
    return {r: run_spmd(p, prog, *args, runner=r, **kwargs) for r in RUNNERS}


def _assert_identical(results, runners=RUNNERS):
    base = results[runners[0]]
    for other in runners[1:]:
        res = results[other]
        assert base.makespan == res.makespan  # exact, not approx
        sa, sb = base.stats, res.stats
        for field in ("words_sent", "words_recv", "msgs_sent", "msgs_recv"):
            np.testing.assert_array_equal(
                getattr(sa, field), getattr(sb, field))
        for ra, rb in zip(base.results, res.results):
            if isinstance(ra, np.ndarray):
                np.testing.assert_array_equal(ra, rb)
            else:
                assert ra == rb


class TestRunnerSelection:
    def test_gen_aliases(self):
        assert resolve_runner("gen") == "gen"
        assert resolve_runner("generator") == "gen"
        assert resolve_runner("GEN") == "gen"


class TestFourWayIdentity:
    def test_waitall_storm_program(self):
        """irecv/isend mesh with the waitall parked as a thunk: the gen
        engine's non-consuming ``ensure_recvs`` pre-flight must reproduce
        the threaded engine's incremental matching bit-exactly."""
        def prog(comm, iters):
            p, r = comm.size, comm.rank
            vec = COOVector.from_arrays(
                512, np.arange(4, dtype=np.int32),
                np.full(4, float(r + 1), dtype=np.float32))
            total = 0.0
            clocks = []
            for it in range(iters):
                reqs = []
                for s in range(1, p):
                    reqs.append(comm.irecv((r - s) % p, it))
                    reqs.append(comm.isend(vec, (r + s) % p, it))
                got = yield (lambda reqs=reqs: comm.waitall(reqs))
                total += sum(float(g.values.sum())
                             for g in got if g is not None)
                clocks.append(comm.clock)
            return (total, clocks)

        results = _run_all(5, prog, 4)
        _assert_identical(results)

    def test_recv_send_thunks_with_fairness_yield(self):
        """Plain blocking recv as a thunk (retry-safe: nothing is consumed
        before the match exists) plus ``yield None`` fairness points."""
        def prog(comm):
            nxt, prv = (comm.rank + 1) % comm.size, (comm.rank - 1) % comm.size
            out = []
            for it in range(3):
                comm.send(np.full(8, comm.rank + it, np.float32), nxt, it)
                yield None  # cooperative fairness yield, no-op semantics
                got = yield (lambda it=it: comm.recv(prv, it))
                out.append(float(got[0]))
            return out

        results = _run_all(4, prog)
        _assert_identical(results)

    def test_call_wrapped_dense_collectives(self):
        """sendrecv-based subroutines post before they block, so they are
        not retry-safe; ``yield Call(fn)`` runs them on a carrier thread
        that parks like a cooperative rank."""
        def prog(comm):
            x = np.linspace(0, 1, 96, dtype=np.float32) * (comm.rank + 1)
            ring = yield Call(lambda: coll.allreduce(comm, x, algo="ring"))
            rd = yield Call(
                lambda: coll.allreduce(comm, x, algo="recursive_doubling"))
            got = yield Call(
                lambda: comm.sendrecv(comm.rank, (comm.rank + 1) % comm.size,
                                      (comm.rank - 1) % comm.size, 77))
            assert got == (comm.rank - 1) % comm.size
            return np.concatenate([ring, rd])

        results = _run_all(4, prog)
        _assert_identical(results)

    def test_fused_collective_thunk(self):
        """A fused-collective rendezvous is retry-safe by construction on
        the gen engine (parked ranks find their slot on retry), so it can
        be yielded as a plain thunk.  Threads has no engine, so the oracle
        here is gen vs coop."""
        def _exec_sum(net, sig, payloads):
            s = np.add.reduce(np.stack(payloads), axis=0)
            return [s.copy() for _ in payloads]

        def prog(comm):
            x = np.full(16, float(comm.rank + 1), dtype=np.float32)
            out = yield (lambda: comm.fused_collective(("sum", 16), x,
                                                       _exec_sum))
            return out

        results = {r: run_spmd(4, prog, runner=r) for r in ("gen", "coop")}
        _assert_identical(results, runners=("gen", "coop"))

    def test_plain_function_under_gen_delegates(self):
        """Non-generator programs run unchanged under ``runner="gen"``
        (the engine falls back to the cooperative scheduler), so existing
        scheme programs keep working."""
        from repro.allreduce import make_allreduce

        def prog(comm):
            algo = make_allreduce("oktopk", density=0.05)
            rng = np.random.default_rng(41 + comm.rank)
            outs = []
            for t in range(1, 4):
                res = algo.reduce(
                    comm, rng.normal(size=1024).astype(np.float32), t)
                upd = res.update
                outs.append(upd.to_dense() if isinstance(upd, COOVector)
                            else np.asarray(upd))
            return np.concatenate(outs)

        results = _run_all(4, prog)
        _assert_identical(results)

    def test_drive_program_inline_single_rank(self):
        def prog(comm):
            comm.send("self", comm.rank, 1)
            got = yield (lambda: comm.recv(comm.rank, 1))
            return got

        for runner in RUNNERS:
            assert run_spmd(1, prog, runner=runner)[0] == "self"
        # and explicitly via the adapter
        assert run_spmd(1, drive_program(prog), runner="coop")[0] == "self"


class TestFailureTaxonomy:
    def test_program_error_unblocks_parked_generators(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            yield (lambda: comm.recv(0))  # parked until the abort arrives

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, runner="gen")
        assert isinstance(ei.value.failures[0], RuntimeError)

    def test_direct_blocking_call_in_body_is_a_clear_error(self):
        """A would-park primitive called directly between yields (not as
        a thunk) cannot be retried — the engine reports a programming
        error naming the fix instead of corrupting the generator."""
        def prog(comm):
            if comm.rank == 1:
                yield None
                comm.recv(0, 9)  # nobody sent yet: would park in body code
            yield None

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner="gen")
        err = ei.value.failures[1]
        assert isinstance(err, RuntimeError)
        assert "yield it as a zero-arg thunk" in str(err)

    def test_error_raised_through_yield(self):
        """An exception from a thunk is thrown back into the generator at
        the yield point, so programs can catch comm errors in-line."""
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            try:
                yield (lambda: comm.recv(0))
            except Exception as exc:
                return type(exc).__name__
            return "no error"

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner="gen")
        assert list(ei.value.failures) == [0]

    def test_global_deadlock_detected(self):
        holder = {}

        def prog(comm):
            holder["net"] = comm.net
            # everyone waits on a message nobody sends
            yield (lambda: comm.recv((comm.rank + 1) % comm.size, 9))

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, runner="gen")
        assert "can never match" in str(ei.value)
        exc = holder["net"]._abort_exc
        assert isinstance(exc, DeadlockError)
        assert len(exc.blocked) == 3
        assert all(entry["op"] == "recv" for entry in exc.blocked)

    def test_planned_crash_reported_to_survivors(self):
        """A fault-plan crash under the gen runner behaves like under the
        other runners: survivors that talk to the dead rank get a
        RankFailedError naming it."""
        plan = FaultPlan(crashes=[RankCrash(rank=1, time=0.0)])

        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            comm.send(np.ones(4, np.float32), nxt, 1)
            got = yield (lambda: comm.recv((comm.rank - 1) % comm.size, 1))
            return float(got.sum())

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, runner="gen", faults=plan)
        assert isinstance(ei.value.failures[1], SimulatedRankCrash)

    def test_elastic_crash_with_indifferent_survivors(self):
        """Survivors that never touch the dead rank finish normally: the
        section succeeds and reports the crash in ``SpmdResult.crashed``."""
        plan = FaultPlan(crashes=[RankCrash(rank=2, time=0.0)])

        def prog(comm):
            if comm.rank == 2:
                comm.send(np.ones(2, np.float32), 0, 5)  # crashes here
                return None
            peer = 1 - comm.rank
            comm.send(comm.rank, peer, 1)
            got = yield (lambda: comm.recv(peer, 1))
            return got

        res = run_spmd(3, prog, runner="gen", faults=plan)
        assert list(res.crashed) == [2]
        assert res.results[0] == 1 and res.results[1] == 0


class TestSchemeEquivalenceUnderGen:
    @pytest.mark.parametrize("scheme", ["dense", "gtopk", "oktopk"])
    def test_schemes_identical_gen_vs_threads(self, scheme):
        from repro.allreduce import make_allreduce

        def prog(comm):
            algo = make_allreduce(
                scheme, **({} if scheme == "dense" else {"density": 0.05}))
            rng = np.random.default_rng(17 + comm.rank)
            outs = []
            for t in range(1, 3):
                res = algo.reduce(
                    comm, rng.normal(size=1536).astype(np.float32), t)
                upd = res.update
                outs.append(upd.to_dense() if isinstance(upd, COOVector)
                            else np.asarray(upd))
            return np.concatenate(outs)

        results = {r: run_spmd(4, prog, runner=r)
                   for r in ("gen", "threads")}
        _assert_identical(results, runners=("gen", "threads"))
