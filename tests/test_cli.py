"""CLI smoke tests: every subcommand runs and prints sane output."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_volume(self, capsys):
        assert main(["volume", "--scheme", "oktopk", "--n", "2048",
                     "--p", "4", "--k", "32"]) == 0
        out = capsys.readouterr().out
        assert "measured words per rank" in out

    def test_volume_density_resolves_k(self, capsys):
        assert main(["volume", "--n", "1000", "--p", "2",
                     "--density", "0.05"]) == 0
        assert "k=50" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--n", "1024", "--p", "4", "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "oktopk" in out and "dense" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "14,728,266" in out
        assert "133,547,324" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--model", "vgg16", "--p", "16"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out and "oktopk" in out

    def test_train(self, capsys):
        assert main(["train", "--workload", "lstm", "--scheme", "oktopk",
                     "--workers", "2", "--iters", "3"]) == 0
        out = capsys.readouterr().out
        assert "final loss" in out and "breakdown" in out

    def test_serve(self, capsys):
        assert main(["serve", "--workers", "4", "--requests", "8",
                     "--rate", "1500", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "goodput" in out and "TTFT" in out and "p99" in out
        assert "allreduce/" in out  # algorithm provenance line

    def test_serve_arg_parsing(self):
        ap = build_parser()
        args = ap.parse_args(["serve", "--workers", "2", "--requests", "5",
                              "--prompt-tokens", "16:32",
                              "--algorithm", "bandwidth",
                              "--max-wait", "1e-4"])
        assert args.workers == 2 and args.requests == 5
        assert args.prompt_tokens == "16:32"
        assert args.algorithm == "bandwidth" and args.max_wait == 1e-4

    def test_serve_bad_token_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--requests", "4", "--prompt-tokens", "x:y"])

    def test_serve_is_seeded(self, capsys):
        argv = ["serve", "--workers", "2", "--requests", "6", "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_serve_sweep(self, capsys):
        assert main(["serve", "--workers", "2", "--requests", "6",
                     "--sweep", "500", "4000"]) == 0
        out = capsys.readouterr().out
        assert "offered req/s" in out
        # one row per swept rate
        assert len([ln for ln in out.splitlines()
                    if ln.strip() and ln.lstrip()[0].isdigit()]) == 2

    def test_serve_trace(self, capsys, tmp_path):
        from repro.serve import Workload

        wl = Workload.poisson(5, 1000.0, seed=3)
        trace = tmp_path / "trace.json"
        trace.write_text(wl.to_json())
        assert main(["serve", "--workers", "2",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "requests=5" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_parser_help_lists_subcommands(self):
        ap = build_parser()
        help_text = ap.format_help()
        for cmd in ("volume", "table1", "table2", "scaling", "train",
                    "serve"):
            assert cmd in help_text
