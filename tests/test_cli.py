"""CLI smoke tests: every subcommand runs and prints sane output."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_volume(self, capsys):
        assert main(["volume", "--scheme", "oktopk", "--n", "2048",
                     "--p", "4", "--k", "32"]) == 0
        out = capsys.readouterr().out
        assert "measured words per rank" in out

    def test_volume_density_resolves_k(self, capsys):
        assert main(["volume", "--n", "1000", "--p", "2",
                     "--density", "0.05"]) == 0
        assert "k=50" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--n", "1024", "--p", "4", "--k", "16"]) == 0
        out = capsys.readouterr().out
        assert "oktopk" in out and "dense" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "14,728,266" in out
        assert "133,547,324" in out

    def test_scaling(self, capsys):
        assert main(["scaling", "--model", "vgg16", "--p", "16"]) == 0
        out = capsys.readouterr().out
        assert "weak scaling" in out and "oktopk" in out

    def test_train(self, capsys):
        assert main(["train", "--workload", "lstm", "--scheme", "oktopk",
                     "--workers", "2", "--iters", "3"]) == 0
        out = capsys.readouterr().out
        assert "final loss" in out and "breakdown" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_parser_help_lists_subcommands(self):
        ap = build_parser()
        help_text = ap.format_help()
        for cmd in ("volume", "table1", "table2", "scaling", "train"):
            assert cmd in help_text
