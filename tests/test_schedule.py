"""Exchange schedules: correctness of patterns and the congestion benefit
of destination rotation (Figure 2)."""

import numpy as np
import pytest

from repro.allreduce import make_allreduce
from repro.allreduce.schedule import buckets, make_steps, naive_steps, rotated_steps
from repro.comm import NetworkModel, run_spmd


class TestSchedules:
    @pytest.mark.parametrize("p", [2, 3, 8])
    def test_rotated_is_permutation_per_step(self, p):
        for s in range(p - 1):
            dsts = [rotated_steps(r, p)[s].send_to[0] for r in range(p)]
            assert sorted(dsts) == list(range(p))  # each step a permutation

    @pytest.mark.parametrize("p", [2, 3, 8])
    def test_rotated_send_recv_consistent(self, p):
        # if i sends to j at step s, then j receives from i at step s
        for r in range(p):
            for s, step in enumerate(rotated_steps(r, p)):
                dst = step.send_to[0]
                assert rotated_steps(dst, p)[s].recv_from == (r,)

    @pytest.mark.parametrize("p", [2, 3, 8])
    def test_naive_converges_on_step_owner(self, p):
        for s in range(p):
            senders = [r for r in range(p)
                       if s in naive_steps(r, p)[s].send_to]
            assert sorted(senders) == [r for r in range(p) if r != s]
            assert naive_steps(s, p)[s].recv_from == tuple(
                r for r in range(p) if r != s)

    def test_every_pair_communicates_once(self):
        p = 8
        for rotation in (True, False):
            for r in range(p):
                sends = [d for st in make_steps(r, p, rotation)
                         for d in st.send_to]
                assert sorted(sends) == sorted(set(range(p)) - {r})

    def test_buckets_cover_all_steps(self):
        steps = rotated_steps(0, 16)
        got = [s for b in buckets(steps, 4) for s in b]
        assert got == list(steps)

    def test_bucket_size_validation(self):
        with pytest.raises(ValueError):
            list(buckets([], 0))


class TestRotationCongestion:
    def _makespan(self, rotation: bool) -> float:
        p, n, k = 16, 8192, 256
        model = NetworkModel(alpha=1e-6, beta=1e-8, gamma=0.0)

        def prog(comm):
            algo = make_allreduce("oktopk", k=k, rotation=rotation,
                                  tau_prime=64)
            rng = np.random.default_rng(5 + comm.rank)
            acc = rng.normal(size=n).astype(np.float32)
            # steady-state iteration (no threshold allgatherv)
            algo.reduce(comm, acc, 1)
            start = comm.clock
            algo.reduce(comm, acc, 2)
            return comm.clock - start

        res = run_spmd(p, prog, model=model)
        return max(res.results)

    def test_rotation_reduces_endpoint_congestion(self):
        """Figure 2: the rotated schedule avoids ingress hot-spots, so the
        split-and-reduce phase completes faster."""
        t_naive = self._makespan(rotation=False)
        t_rot = self._makespan(rotation=True)
        assert t_rot < t_naive
