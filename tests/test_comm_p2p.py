"""Unit tests for the point-to-point layer of the simulated runtime."""

import numpy as np
import pytest

from repro.comm import NetworkModel, Network, nwords, run_spmd
from repro.errors import RankFailedError


class TestPayloadSizing:
    def test_float32_array_is_one_word_per_element(self):
        assert nwords(np.zeros(10, dtype=np.float32)) == 10

    def test_int32_array_is_one_word_per_element(self):
        assert nwords(np.zeros(7, dtype=np.int32)) == 7

    def test_float64_array_is_two_words_per_element(self):
        assert nwords(np.zeros(5, dtype=np.float64)) == 10

    def test_int64_array_is_two_words_per_element(self):
        assert nwords(np.zeros(3, dtype=np.int64)) == 6

    def test_none_is_free(self):
        assert nwords(None) == 0

    def test_scalar_is_one_word(self):
        assert nwords(42) == 1
        assert nwords(3.14) == 1

    def test_tuple_sums_members(self):
        payload = (np.zeros(4, dtype=np.float32), np.zeros(4, dtype=np.int32))
        assert nwords(payload) == 8

    def test_dict_sums_values(self):
        assert nwords({"a": 1, "b": np.zeros(2, np.float32)}) == 3

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            nwords(object())


class TestSendRecv:
    def test_roundtrip_array(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(8, dtype=np.float32), dest=1, tag=7)
                return None
            return comm.recv(source=0, tag=7)

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res[1], np.arange(8, dtype=np.float32))

    def test_fifo_ordering_same_channel(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=3)
                return None
            return [comm.recv(0, tag=3) for _ in range(5)]

        res = run_spmd(2, prog)
        assert res[1] == [0, 1, 2, 3, 4]

    def test_tag_selective_matching(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("low", dest=1, tag=1)
                comm.send("high", dest=1, tag=2)
                return None
            high = comm.recv(0, tag=2)
            low = comm.recv(0, tag=1)
            return (high, low)

        res = run_spmd(2, prog)
        assert res[1] == ("high", "low")

    def test_send_buffer_is_snapshotted(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(4, dtype=np.float32)
                comm.send(buf, dest=1)
                buf[:] = -1  # must not corrupt the in-flight message
                return None
            return comm.recv(0)

        res = run_spmd(2, prog)
        np.testing.assert_array_equal(res[1], np.ones(4, dtype=np.float32))

    def test_isend_waitall_roundtrip(self):
        def prog(comm):
            peers = [r for r in range(comm.size) if r != comm.rank]
            sends = [comm.isend(comm.rank, dest=p, tag=9) for p in peers]
            recvs = [comm.irecv(source=p, tag=9) for p in peers]
            got = comm.waitall(recvs + sends)
            return sorted(g for g in got if g is not None)

        res = run_spmd(4, prog)
        for r in range(4):
            assert res[r] == sorted(set(range(4)) - {r})

    def test_sendrecv_exchange(self):
        def prog(comm):
            partner = comm.rank ^ 1
            return comm.sendrecv(comm.rank * 10, partner, partner, 5)

        res = run_spmd(2, prog)
        assert res[0] == 10 and res[1] == 0


class TestClockModel:
    def test_single_message_costs_alpha_plus_beta(self):
        model = NetworkModel(alpha=1e-3, beta=1e-6)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000, dtype=np.float32), dest=1)
            else:
                comm.recv(0)
            return comm.clock

        res = run_spmd(2, prog, model=model)
        assert res[1] == pytest.approx(1e-3 + 1e-6 * 1000)

    def test_ingress_serializes_concurrent_senders(self):
        # Three senders to rank 0: first arrival at alpha + beta*L, each
        # further message queues behind on rank 0's ingress link.
        model = NetworkModel(alpha=1e-3, beta=1e-6)
        L = 1000

        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(source=s) for s in (1, 2, 3)]
                comm.waitall(reqs)
                return comm.clock
            comm.send(np.zeros(L, dtype=np.float32), dest=0)
            return None

        res = run_spmd(4, prog, model=model)
        expected = 1e-3 + 3 * 1e-6 * L
        assert res[0] == pytest.approx(expected)

    def test_egress_serializes_one_sender(self):
        model = NetworkModel(alpha=1e-3, beta=1e-6)
        L = 500

        def prog(comm):
            if comm.rank == 0:
                for dst in (1, 2):
                    comm.send(np.zeros(L, dtype=np.float32), dest=dst)
                return comm.clock
            comm.recv(0)
            return comm.clock

        res = run_spmd(3, prog, model=model)
        # Sender clock passes both serializations.
        assert res[0] == pytest.approx(2 * 1e-6 * L)
        # Second destination sees its message start tx after the first.
        assert res[2] == pytest.approx(1e-6 * L + 1e-3 + 1e-6 * L)

    def test_compute_advances_clock(self):
        def prog(comm):
            comm.compute(0.5)
            return comm.clock

        assert run_spmd(1, prog)[0] == pytest.approx(0.5)

    def test_compute_rejects_negative(self):
        def prog(comm):
            comm.compute(-1.0)

        with pytest.raises(RankFailedError):
            run_spmd(1, prog)

    def test_phase_accounting(self):
        def prog(comm):
            with comm.phase("a"):
                comm.compute(0.25)
            with comm.phase("b"):
                comm.compute(0.5)
            with comm.phase("a"):
                comm.compute(0.25)
            return comm.phase_times()

        times = run_spmd(1, prog)[0]
        assert times["a"] == pytest.approx(0.5)
        assert times["b"] == pytest.approx(0.5)

    def test_determinism_across_runs(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            for it in range(5):
                data = rng.normal(size=64).astype(np.float32)
                dst = (comm.rank + 1 + it) % comm.size
                src = (comm.rank - 1 - it) % comm.size
                comm.sendrecv(data, dst, src, it)
            return comm.clock

        a = run_spmd(6, prog)
        b = run_spmd(6, prog)
        assert a.results == b.results
        assert a.makespan == b.makespan


class TestTrafficCounters:
    def test_words_counted_per_rank(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.float32), dest=1)
            else:
                comm.recv(0)

        res = run_spmd(2, prog)
        stats = res.stats
        assert stats.words_sent[0] == 100
        assert stats.words_recv[1] == 100
        assert stats.msgs_sent[0] == 1

    def test_reset_stats(self):
        net = Network(2)

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10, dtype=np.float32), dest=1)
            else:
                comm.recv(0)

        run_spmd(2, prog, network=net)
        net.reset_stats()
        assert net.stats().total_words == 0


class TestFailures:
    def test_rank_failure_raises_and_unblocks(self):
        def prog(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            comm.recv(0)  # would block forever without abort propagation

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog)
        assert 0 in ei.value.failures
        assert isinstance(ei.value.failures[0], ValueError)

    def test_invalid_destination(self):
        def prog(comm):
            comm.send(1, dest=99)

        with pytest.raises(RankFailedError):
            run_spmd(2, prog)

    def test_nranks_must_be_positive(self):
        with pytest.raises(ValueError):
            Network(0)
