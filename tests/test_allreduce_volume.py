"""Communication volume: measured words vs the Table 1 cost model and the
Theorem 3.1 optimality interval for Ok-Topk."""

import numpy as np
import pytest

from repro.allreduce import make_allreduce
from repro.comm import run_spmd

N = 4096
K = 64


def grad(rank: int, t: int = 1, n: int = N) -> np.ndarray:
    rng = np.random.default_rng(31 + 1000 * t + rank)
    return rng.normal(size=n).astype(np.float32)


def measure(name: str, p: int, *, iters=(2,), n: int = N, **kwargs):
    """Run iterations 1..max(iters); return per-rank received words summed
    over the requested steady-state iterations only."""
    last = max(iters)

    def prog(comm):
        algo = make_allreduce(name, **kwargs)
        marks = {}
        for t in range(1, last + 1):
            # own counter only: mutated exclusively by this rank's receives
            before = int(comm.net.words_recv[comm.rank])
            algo.reduce(comm, grad(comm.rank, t, n), t)
            if t in iters:
                marks[t] = int(comm.net.words_recv[comm.rank]) - before
        return marks

    res = run_spmd(p, prog)
    total = np.zeros(p, dtype=np.int64)
    for t in iters:
        total += np.array([res[r][t] for r in range(p)])
    return total / len(iters)


CONTROL_SLACK = lambda p: 8 * p + 64  # owner ids, sizes, boundaries


class TestDenseVolume:
    def test_dense_2n(self):
        p = 8
        recv = measure("dense", p, iters=(1,))
        expect = 2 * N * (p - 1) / p
        assert np.all(np.abs(recv - expect) <= 0.05 * expect + 32)


class TestTopkAVolume:
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_grows_linearly_with_p(self, p):
        recv = measure("topka", p, iters=(1,), k=K)
        expect = 2 * K * (p - 1)
        assert np.all(recv >= 0.95 * expect)
        assert np.all(recv <= 1.05 * expect + CONTROL_SLACK(p))


class TestGTopkVolume:
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_bounded_by_4k_logp(self, p):
        recv = measure("gtopk", p, iters=(1,), k=K)
        bound = 4 * K * np.log2(p)
        # tree-structured: per-rank receive varies; max obeys the bound
        assert recv.max() <= bound * 1.1 + CONTROL_SLACK(p)


class TestTopkDSAVolume:
    def test_between_4k_and_dense(self):
        p = 8
        recv = measure("topkdsa", p, iters=(1,), k=K)
        lower = 2 * K * (p - 1) / p           # best case (overlap+uniform)
        upper = (2 * K + N) * (p - 1) / p     # fill-in degraded to dense
        assert np.all(recv >= lower * 0.9)
        assert np.all(recv <= upper * 1.1 + CONTROL_SLACK(p))


class TestOkTopkVolume:
    @pytest.mark.parametrize("p", [4, 8, 16])
    def test_theorem31_interval(self, p):
        """Steady state (no threshold re-evaluation): per-rank receive in
        [2k(P-1)/P, 6k(P-1)/P] + control words (Theorem 3.1 + Eq. 3)."""
        recv = measure("oktopk", p, iters=(2, 3), k=K, tau_prime=64, tau=64)
        lo = 2 * K * (p - 1) / p
        hi = 6 * K * (p - 1) / p
        slack = CONTROL_SLACK(p)
        assert np.all(recv <= hi + slack), (recv, hi)
        # The average rank must receive at least ~the lower bound of the
        # global phase; allow selection deviation (threshold reuse).
        assert recv.mean() >= 0.5 * lo

    def test_volume_independent_of_p(self):
        """The defining property: Ok-Topk's bandwidth term does not grow
        with P (while TopkA's does)."""
        v8 = measure("oktopk", 8, iters=(2,), k=K, tau_prime=64).mean()
        v16 = measure("oktopk", 16, iters=(2,), k=K, tau_prime=64).mean()
        a8 = measure("topka", 8, iters=(2,), k=K).mean()
        a16 = measure("topka", 16, iters=(2,), k=K).mean()
        assert v16 <= 1.6 * v8 + CONTROL_SLACK(16)
        assert a16 >= 1.8 * a8  # allgather: ~2x more volume at 2x ranks

    def test_reevaluation_iterations_cost_more(self):
        """Iterations that re-evaluate the global threshold pay an extra
        allgatherv (~2k); amortized by tau'."""
        eval_iter = measure("oktopk", 8, iters=(1,), k=K, tau_prime=64).mean()
        steady = measure("oktopk", 8, iters=(2,), k=K, tau_prime=64).mean()
        assert eval_iter > steady

    def test_crossover_oktopk_beats_topka_at_scale(self):
        p = 16
        ok = measure("oktopk", p, iters=(2,), k=K, tau_prime=64).mean()
        ta = measure("topka", p, iters=(2,), k=K).mean()
        assert ok < ta / 2
