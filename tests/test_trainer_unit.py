"""Trainer internals: scheme construction, overlap credit, xi scheduling."""

import pytest

from repro.allreduce import DenseAllreduce, OkTopkAllreduce
from repro.comm import NetworkModel, run_spmd
from repro.data import ShardedLoader, make_an4_like
from repro.nn.models import make_lstm_speech_model
from repro.train import Trainer, TrainerConfig, build_allreduce


class TestBuildAllreduce:
    def test_dense_ignores_density(self):
        cfg = TrainerConfig(iterations=1, scheme="dense", density=0.5)
        assert isinstance(build_allreduce(cfg), DenseAllreduce)

    def test_sparse_gets_density(self):
        cfg = TrainerConfig(iterations=1, scheme="oktopk", density=0.1)
        algo = build_allreduce(cfg)
        assert isinstance(algo, OkTopkAllreduce)
        assert algo.resolve_k(1000) == 100

    def test_explicit_k_wins_over_density(self):
        cfg = TrainerConfig(iterations=1, scheme="oktopk", density=0.1,
                            k=7)
        assert build_allreduce(cfg).resolve_k(1000) == 7

    def test_scheme_kwargs_forwarded(self):
        cfg = TrainerConfig(iterations=1, scheme="oktopk", density=0.1,
                            scheme_kwargs={"tau": 5, "rotation": False})
        algo = build_allreduce(cfg)
        assert algo.tau == 5 and not algo.rotation


def _tiny_setup(comm, cfg):
    train, _ = make_an4_like(16, 4, features=6, seq_len=4, n_phones=3,
                             seed=0)
    model = make_lstm_speech_model(features=6, hidden=8, layers=1,
                                   classes=3, seq_len=4, seed=1)
    loader = ShardedLoader(train, 4, comm.rank, comm.size, seed=2)
    return Trainer(comm, model, loader, cfg)


class TestTrainerMechanics:
    def test_iteration_count(self):
        def prog(comm):
            cfg = TrainerConfig(iterations=5, scheme="dense", lr=0.01)
            return _tiny_setup(comm, cfg).run()

        rec = run_spmd(2, prog)[0]
        assert len(rec.records) == 5
        assert [r.t for r in rec.records] == [1, 2, 3, 4, 5]

    def test_overlap_credit_only_for_overlappable(self):
        """DenseOvlp iteration time discounts overlapped communication;
        Dense does not."""
        def prog(comm, scheme):
            cfg = TrainerConfig(iterations=2, scheme=scheme, lr=0.01,
                                overlap_backward_fraction=1.0)
            return _tiny_setup(comm, cfg).run()

        net = NetworkModel(alpha=1e-6, beta=1e-7, flop_time=1e-8)
        dense = run_spmd(2, prog, "dense", model=net)[0]
        ovlp = run_spmd(2, prog, "dense_ovlp", model=net)[0]
        r_d, r_o = dense.records[1], ovlp.records[1]
        # same raw comm volume/time magnitude, but DenseOvlp's visible
        # iteration time is smaller than compute+comm
        assert r_o.iteration_time < r_o.compute_time + r_o.comm_time
        assert r_d.iteration_time == pytest.approx(
            r_d.compute_time + r_d.sparsify_time + r_d.comm_time)

    def test_xi_scheduled_iterations_only(self):
        def prog(comm):
            cfg = TrainerConfig(iterations=6, scheme="oktopk", density=0.1,
                                lr=0.01, xi_every=3)
            return _tiny_setup(comm, cfg).run()

        rec = run_spmd(2, prog)[0]
        have_xi = [r.t for r in rec.records if r.xi is not None]
        assert have_xi == [3, 6]

    def test_adam_mode_uses_wrapper(self):
        def prog(comm):
            cfg = TrainerConfig(iterations=2, scheme="oktopk", density=0.1,
                                mode="adam", lr=1e-3)
            trainer = _tiny_setup(comm, cfg)
            from repro.optim import SparseOptimWrapper
            assert isinstance(trainer.driver, SparseOptimWrapper)
            return trainer.run()

        rec = run_spmd(2, prog)[0]
        assert len(rec.records) == 2

    def test_selected_recorded_for_sparse(self):
        def prog(comm):
            cfg = TrainerConfig(iterations=2, scheme="oktopk",
                                density=0.1, lr=0.01)
            return _tiny_setup(comm, cfg).run()

        rec = run_spmd(2, prog)[0]
        assert rec.records[0].selected is not None
        assert rec.records[0].selected > 0
