"""Fault-plan subsystem: deterministic slowdowns, stragglers, crashes,
survivable collectives and elastic recovery (see repro.comm.faults)."""

import json

import numpy as np
import pytest

from repro.allreduce import ParamLayout, make_allreduce
from repro.comm import Network, collectives, run_spmd
from repro.comm.faults import (ComputeStraggler, FaultPlan, FaultState,
                               LinkSlowdown, RankCrash)
from repro.errors import (CommError, ConfigError, RankFailedError,
                          SimulatedRankCrash)

RUNNERS = ("coop", "threads")


def _allreduce_prog(comm, n=256, iters=2, compute=1e-5):
    rng = np.random.default_rng(comm.rank)
    x = rng.standard_normal(n).astype(np.float32)
    out = None
    for _ in range(iters):
        comm.compute(compute)
        out = collectives.allreduce(comm, x)
    return out


# ---------------------------------------------------------------------------
# Plan validation and (de)serialization
# ---------------------------------------------------------------------------
class TestPlanValidation:
    def test_slowdown_factor_must_be_positive(self):
        with pytest.raises(ConfigError, match="factor"):
            LinkSlowdown(rank=0, factor=0.0)

    def test_slowdown_direction_checked(self):
        with pytest.raises(ConfigError, match="direction"):
            LinkSlowdown(rank=0, factor=2.0, direction="sideways")

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError, match="window"):
            ComputeStraggler(rank=0, factor=2.0, t_start=1.0, t_end=1.0)

    def test_crash_needs_exactly_one_pin(self):
        with pytest.raises(ConfigError, match="exactly one"):
            RankCrash(rank=0)
        with pytest.raises(ConfigError, match="exactly one"):
            RankCrash(rank=0, time=1.0, iteration=2)

    def test_crash_iteration_is_one_based(self):
        with pytest.raises(ConfigError, match="1-based"):
            RankCrash(rank=0, iteration=0)

    def test_duplicate_crash_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            FaultPlan(crashes=[RankCrash(rank=1, time=0.0),
                               RankCrash(rank=1, iteration=3)])

    def test_compile_checks_rank_ranges(self):
        with pytest.raises(ConfigError, match="out of range"):
            FaultPlan(links=[LinkSlowdown(rank=4, factor=2.0)]).compile(4)
        with pytest.raises(ConfigError, match="out of range"):
            FaultPlan(crashes=[RankCrash(rank=-1, time=0.0)]).compile(4)

    def test_json_round_trip(self):
        plan = FaultPlan(
            links=[LinkSlowdown(rank=1, factor=4.0, direction="egress",
                                t_start=0.5, t_end=2.0),
                   LinkSlowdown(rank=0, factor=2.0)],
            stragglers=[ComputeStraggler(rank=2, factor=3.0)],
            crashes=[RankCrash(rank=3, iteration=7)],
            detect_timeout=5e-4, seed=11)
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan
        json.loads(plan.to_json())  # strict JSON (no inf leaked)

    def test_seeded_generators_are_reproducible(self):
        a = FaultPlan.straggler_skew(8, seed=3)
        assert a == FaultPlan.straggler_skew(8, seed=3)
        assert a != FaultPlan.straggler_skew(8, seed=4)
        assert a.stragglers[0].rank != a.links[0].rank
        j = FaultPlan.jittery(8, seed=5, windows=3)
        assert j == FaultPlan.jittery(8, seed=5, windows=3)
        assert len(j.links) == 3

    def test_window_factors_compose_multiplicatively(self):
        st = FaultPlan(
            stragglers=[ComputeStraggler(rank=0, factor=2.0),
                        ComputeStraggler(rank=0, factor=3.0,
                                         t_start=0.0, t_end=1.0)],
        ).compile(2)
        assert isinstance(st, FaultState)
        assert st.compute_factor(0, 0.5) == 6.0
        assert st.compute_factor(0, 2.0) == 2.0  # second window ended
        assert st.compute_factor(1, 0.5) == 1.0


# ---------------------------------------------------------------------------
# Determinism contracts
# ---------------------------------------------------------------------------
class TestDeterminism:
    def test_empty_plan_is_identical_to_no_plan(self):
        base = {r: run_spmd(4, _allreduce_prog, runner=r) for r in RUNNERS}
        empty = {r: run_spmd(4, _allreduce_prog, runner=r,
                             faults=FaultPlan()) for r in RUNNERS}
        for r in RUNNERS:
            assert empty[r].makespan == base[r].makespan
            np.testing.assert_array_equal(empty[r][0], base[r][0])
            np.testing.assert_array_equal(empty[r].stats.words_sent,
                                          base[r].stats.words_sent)

    def test_faulted_run_identical_across_runners(self):
        plan = FaultPlan.straggler_skew(4, seed=7)
        res = {r: run_spmd(4, _allreduce_prog, runner=r, faults=plan)
               for r in RUNNERS}
        a, b = (res[r] for r in RUNNERS)
        assert a.makespan == b.makespan
        assert list(a.network.clocks) == list(b.network.clocks)
        for x, y in zip(a.results, b.results):
            np.testing.assert_array_equal(x, y)

    def test_jittery_plan_identical_across_runners(self):
        plan = FaultPlan.jittery(4, seed=2, horizon=1e-4, windows=4,
                                 window_frac=0.3)
        res = {r: run_spmd(4, _allreduce_prog, runner=r, faults=plan)
               for r in RUNNERS}
        a, b = (res[r] for r in RUNNERS)
        assert a.makespan == b.makespan
        assert list(a.network.clocks) == list(b.network.clocks)


# ---------------------------------------------------------------------------
# Slowdown / straggler semantics
# ---------------------------------------------------------------------------
class TestSlowdowns:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_slow_link_increases_makespan(self, runner):
        clean = run_spmd(4, _allreduce_prog, runner=runner).makespan
        slow = run_spmd(
            4, _allreduce_prog, runner=runner,
            faults=FaultPlan(links=[LinkSlowdown(rank=1, factor=64.0)]),
        ).makespan
        assert slow > clean

    @pytest.mark.parametrize("direction", ["egress", "ingress", "both"])
    def test_directions_all_bite(self, direction):
        clean = run_spmd(4, _allreduce_prog).makespan
        plan = FaultPlan(links=[LinkSlowdown(rank=0, factor=64.0,
                                             direction=direction)])
        assert run_spmd(4, _allreduce_prog, faults=plan).makespan > clean

    def test_window_after_run_is_noop(self):
        clean = run_spmd(4, _allreduce_prog)
        plan = FaultPlan(links=[LinkSlowdown(rank=1, factor=64.0,
                                             t_start=1e6, t_end=1e7)])
        faulted = run_spmd(4, _allreduce_prog, faults=plan)
        assert faulted.makespan == clean.makespan

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_straggler_scales_compute_exactly(self, runner):
        def prog(comm):
            comm.compute(1e-3)
            return comm.clock

        plan = FaultPlan(stragglers=[ComputeStraggler(rank=1, factor=4.0)])
        res = run_spmd(2, prog, runner=runner, faults=plan)
        assert res[0] == pytest.approx(1e-3)
        assert res[1] == pytest.approx(4e-3)

    def test_straggler_window_edges(self):
        def prog(comm):
            comm.compute(1.0)   # inside window on rank 0 -> 2.0
            comm.compute(1.0)   # starts at 2.0, outside -> 1.0
            return comm.clock

        plan = FaultPlan(stragglers=[ComputeStraggler(
            rank=0, factor=2.0, t_start=0.0, t_end=2.0)])
        res = run_spmd(1, prog, faults=plan)
        assert res[0] == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# Crash detection: every scheme, one-shot and bucketed, P in {4, 16}
# ---------------------------------------------------------------------------
N = 512
VICTIM = 1


def _make_scheme(name):
    if name in ("dense", "dense_ovlp"):
        return make_allreduce(name)
    return make_allreduce(name, density=0.05)


def _split_layout(n, pieces=4):
    from repro.allreduce.session import ParamSegment
    step = n // pieces
    return ParamLayout([
        ParamSegment(i, f"seg{i}", i * step,
                     step if i < pieces - 1 else n - (pieces - 1) * step)
        for i in range(pieces)])


def _crash_prog(comm, scheme, bucket_size):
    ar = _make_scheme(scheme)
    rng = np.random.default_rng(comm.rank)
    acc = rng.standard_normal(N).astype(np.float32)
    layout = _split_layout(N)
    try:
        for t in range(1, 4):
            comm.compute(1e-6)
            if bucket_size is None:
                ar.reduce(comm, acc, t)
            else:
                sess = ar.begin(comm, layout, t, bucket_size=bucket_size)
                for seg in layout.push_order():
                    sess.push(seg, acc[seg.sl])
                sess.finish()
    except RankFailedError as e:
        return ("detected", comm.clock, e.failed_ranks)
    return ("finished", comm.clock, ())


SCHEMES = ("dense", "topka", "gtopk", "oktopk")


class TestCrashDetection:
    @pytest.mark.parametrize("runner", RUNNERS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("bucket_size", [None, 64])
    def test_survivors_detect_named_dead_rank(self, runner, scheme,
                                              bucket_size):
        plan = FaultPlan(crashes=[RankCrash(rank=VICTIM, time=2e-6)])
        res = run_spmd(4, _crash_prog, scheme, bucket_size,
                       runner=runner, faults=plan)
        # the planned crash is not an error: survivors handled it, so the
        # launcher reports success with the dead rank in `crashed`
        assert set(res.crashed) == {VICTIM}
        assert res.results[VICTIM] is None
        death = res.crashed[VICTIM].time
        for r in (0, 2, 3):
            status, clock, failed = res.results[r]
            assert status == "detected"
            assert failed == (VICTIM,)
            # bounded detection latency: the survivor's clock is charged
            # past the death, by at most the configured detector timeout
            # beyond its own progress point
            assert clock >= death
        assert res.crashed[VICTIM].rank == VICTIM

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_detection_deterministic_across_runners(self, scheme):
        plan = FaultPlan(crashes=[RankCrash(rank=VICTIM, time=2e-6)])
        out = {r: run_spmd(4, _crash_prog, scheme, 64, runner=r,
                           faults=plan) for r in RUNNERS}
        a, b = (out[r] for r in RUNNERS)
        assert a.results == b.results
        assert list(a.network.clocks) == list(b.network.clocks)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_p16_mid_collective_crash(self, runner):
        plan = FaultPlan(crashes=[RankCrash(rank=5, time=2e-6)])
        res = run_spmd(16, _crash_prog, "oktopk", None,
                       runner=runner, faults=plan)
        assert set(res.crashed) == {5}
        for r in range(16):
            if r == 5:
                continue
            status, _, failed = res.results[r]
            assert status == "detected"
            assert failed == (5,)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_uncaught_detection_raises_merged_error(self, runner):
        def prog(comm):
            return _allreduce_prog(comm)

        plan = FaultPlan(crashes=[RankCrash(rank=2, time=2e-6)])
        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, runner=runner, faults=plan)
        # one merged error naming exactly the dead rank — survivors'
        # reports collapse instead of piling up as failures themselves
        assert ei.value.failed_ranks == (2,)
        assert isinstance(ei.value.failures[2], SimulatedRankCrash)
        assert "rank 2" in str(ei.value)

    def test_compute_crossing_pins_clock_at_crash_time(self):
        def prog(comm):
            try:
                comm.compute(1.0)
            except SimulatedRankCrash:
                return comm.clock
            return None

        plan = FaultPlan(crashes=[RankCrash(rank=0, time=0.25)])
        res = run_spmd(1, prog, faults=plan)
        assert res.crashed == {}  # caught inside the program
        assert res[0] == pytest.approx(0.25)

    def test_sends_to_dead_rank_are_black_holed(self):
        """Eager sends never raise on a dead destination (NIC semantics);
        only blocking points detect."""
        def prog(comm):
            if comm.rank == 1:
                comm.compute(0.0)  # first fault-checked point: dies here
                return "unreachable"
            comm.send(np.zeros(8, np.float32), dest=1)
            comm.send(np.zeros(8, np.float32), dest=1)
            return "sent"

        plan = FaultPlan(crashes=[RankCrash(rank=1, time=0.0)])
        res = run_spmd(2, prog, faults=plan)
        assert res.results[0] == "sent"
        assert set(res.crashed) == {1}


# ---------------------------------------------------------------------------
# Elastic shrink + resume
# ---------------------------------------------------------------------------
class TestElasticRecovery:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_shrink_returns_group_communicator(self, runner):
        def prog(comm):
            try:
                _allreduce_prog(comm, iters=8)
            except RankFailedError:
                sub = comm.shrink()
                x = np.full(4, 1.0, dtype=np.float32)
                out = collectives.allreduce(sub, x)
                return (sub.rank, sub.size, sub.slot, float(out[0]))
            return None

        plan = FaultPlan(crashes=[RankCrash(rank=1, time=3e-6)])
        res = run_spmd(4, prog, runner=runner, faults=plan)
        survivors = [res.results[r] for r in (0, 2, 3)]
        assert [s[2] for s in survivors] == [0, 2, 3]       # slots
        assert [s[0] for s in survivors] == [0, 1, 2]       # new ranks
        assert all(s[1] == 3 for s in survivors)            # new size
        assert all(s[3] == 3.0 for s in survivors)          # P-1 allreduce

    def test_trainer_elastic_recovery_rekeys_and_converges(self):
        from repro.bench.harness import (perf_proxy, proxy_network,
                                         train_scheme)

        proxy = perf_proxy()
        plan = FaultPlan(crashes=[RankCrash(rank=1, iteration=3)])
        rec = train_scheme(proxy, "oktopk", 4, 8, density=0.05,
                           network=proxy_network(), faults=plan,
                           elastic=True)
        assert len(rec.records) == 8
        assert len(rec.events) == 1
        ev = rec.events[0]
        assert ev["failed_ranks"] == [1]
        assert (ev["old_size"], ev["new_size"]) == (4, 3)
        losses = [r.loss for r in rec.records]
        assert losses[-1] < losses[0]  # the shrunk run keeps learning

    def test_trainer_state_rekeyed_to_smaller_world(self):
        """After recovery the Ok-Topk consensus boundaries must describe a
        P-1 partition and the data loader must cover the global batch with
        P-1 shards."""
        from repro.bench.harness import perf_proxy
        from repro.data import ShardedLoader
        from repro.train import Trainer, TrainerConfig

        proxy = perf_proxy()

        def worker(comm):
            train, _ = proxy.make_splits()
            model = proxy.make_model()
            loader = ShardedLoader(train, proxy.global_batch, comm.rank,
                                   comm.size, seed=0)
            cfg = TrainerConfig(iterations=6, scheme="oktopk",
                                density=0.05, lr=proxy.lr, elastic=True)
            tr = Trainer(comm, model, loader, cfg)
            rec = tr.run()
            st = tr.allreduce.state
            return (rec.events, tr.comm.size, len(st.boundaries),
                    loader.size, loader.local_batch)

        plan = FaultPlan(crashes=[RankCrash(rank=2, iteration=2)])
        res = run_spmd(4, worker, faults=plan)
        for r in (0, 1, 3):
            events, size, nbounds, lsize, lbatch = res.results[r]
            assert size == 3
            assert nbounds == 4            # P-1 regions -> P edges
            assert lsize == 3
            assert lbatch in (5, 6)        # 16 rows over 3 survivors
            assert events[0]["new_size"] == 3

    def test_elastic_identical_across_runners(self):
        from repro.bench.harness import (perf_proxy, proxy_network,
                                         train_scheme)

        proxy = perf_proxy()
        plan = FaultPlan(crashes=[RankCrash(rank=0, iteration=4)])
        recs = {}
        for runner in RUNNERS:
            import os
            old = os.environ.get("REPRO_SPMD_RUNNER")
            os.environ["REPRO_SPMD_RUNNER"] = runner
            try:
                recs[runner] = train_scheme(
                    proxy, "topka", 4, 6, density=0.05,
                    network=proxy_network(), faults=plan, elastic=True)
            finally:
                if old is None:
                    del os.environ["REPRO_SPMD_RUNNER"]
                else:
                    os.environ["REPRO_SPMD_RUNNER"] = old
        a, b = (recs[r] for r in RUNNERS)
        assert [r.loss for r in a.records] == [r.loss for r in b.records]
        assert [r.iteration_time for r in a.records] == \
            [r.iteration_time for r in b.records]
        assert a.events == b.events

    def test_reshard_validates(self):
        from repro.bench.harness import perf_proxy
        from repro.data import ShardedLoader

        train, _ = perf_proxy().make_splits()
        loader = ShardedLoader(train, 16, 0, 4, seed=0)
        loader.reshard(0, 3)
        assert loader.size == 3
        with pytest.raises(ConfigError):
            loader.reshard(3, 3)
        with pytest.raises(ConfigError):
            loader.reshard(0, 17)


# ---------------------------------------------------------------------------
# Launcher failure attribution (satellite: genuine-error aggregation)
# ---------------------------------------------------------------------------
class TestLauncherAttribution:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_multiple_genuine_errors_aggregate_in_rank_order(self, runner):
        def prog(comm):
            if comm.rank in (3, 1):
                raise ValueError(f"boom-{comm.rank}")
            return comm.recv(source=comm.rank + 1 if comm.rank == 0 else 3,
                             tag=9)

        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, runner=runner)
        failed = ei.value.failed_ranks
        # both genuine errors survive attribution, ascending rank order;
        # secondary CommErrors from the blocked ranks are suppressed
        assert set(failed) <= {1, 3} and len(failed) >= 1
        for r in failed:
            assert isinstance(ei.value.failures[r], ValueError)
        if failed == (1, 3):
            assert str(ei.value).index("boom-1") < str(ei.value).index(
                "boom-3")

    def test_coop_aggregates_both_genuine_errors(self):
        """The deterministic engine sees both raises (no abort race)."""
        def prog(comm):
            comm.compute(1e-6)
            if comm.rank in (1, 3):
                raise ValueError(f"boom-{comm.rank}")
            try:
                comm.recv(source=(comm.rank + 1) % 4, tag=9)
            except CommError:
                raise

        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, runner="coop")
        genuine = {r: e for r, e in ei.value.failures.items()
                   if isinstance(e, ValueError)}
        assert 1 in genuine or 3 in genuine

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_commerror_fallback_when_no_genuine_failure(self, runner):
        """All failures CommError (none genuine, none a planned crash):
        the launcher must still raise, reporting those failures."""
        def prog(comm):
            if comm.rank == 0:
                raise CommError("synthetic comm failure")
            return comm.recv(source=0, tag=1)

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner=runner)
        assert 0 in ei.value.failures
        assert "synthetic comm failure" in str(ei.value)

    def test_all_ranks_crashed_is_elastic_success(self):
        def prog(comm):
            comm.compute(1.0)
            return "unreachable"

        plan = FaultPlan(crashes=[RankCrash(rank=0, time=0.1),
                                  RankCrash(rank=1, time=0.2)])
        res = run_spmd(2, prog, faults=plan)
        assert set(res.crashed) == {0, 1}
        assert res.results == [None, None]

    def test_genuine_error_wins_over_crash_reports(self):
        """A real bug during a faulted run must surface as that bug, not
        be masked by the concurrent planned crash."""
        def prog(comm, n=256):
            if comm.rank == 3:
                comm.compute(1e-5)
                raise KeyError("real bug")
            return _allreduce_prog(comm)

        plan = FaultPlan(crashes=[RankCrash(rank=1, time=2e-6)])
        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, faults=plan)
        assert any(isinstance(e, KeyError)
                   for e in ei.value.failures.values())


# ---------------------------------------------------------------------------
# Revoke + fused rendezvous detection (cooperative engine)
# ---------------------------------------------------------------------------
class TestRevokeRendezvous:
    def test_rank_parked_at_rendezvous_detects_revoked_peer(self):
        """A rank already parked at a fused-collective rendezvous when a
        peer is declared dead must be woken with RankFailedError (the
        rendezvous can never complete)."""
        def prog(comm):
            x = np.ones(64, dtype=np.float32)
            if comm.rank == 0:
                # Block until rank 1 is parked at the rendezvous, then
                # die (revoke is the public ULFM test hook).
                comm.recv(source=1, tag=5)
                comm.net.revoke(0)
                return "revoked"
            if comm.rank == 1:
                comm.send(1.0, dest=0, tag=5)
            try:
                collectives.allreduce(comm, x)
            except RankFailedError as e:
                return ("detected", e.failed_ranks)
            return "finished"

        res = run_spmd(4, prog, runner="coop", fused=True)
        assert res.results[0] == "revoked"
        for r in (1, 2, 3):
            assert res.results[r] == ("detected", (0,))

    def test_fused_fast_path_disabled_under_fault_plan(self):
        from repro.comm.fused import _available

        def prog(comm):
            return _available(comm)

        plan = FaultPlan(links=[LinkSlowdown(rank=0, factor=2.0)])
        res = run_spmd(4, prog, runner="coop", fused=True, faults=plan)
        assert res.results == [False] * 4
        clean = run_spmd(4, prog, runner="coop", fused=True)
        assert clean.results == [True] * 4

    def test_network_revoke_requires_valid_rank(self):
        net = Network(4)
        net.revoke(2)
        assert net.revoked
        assert net.dead_ranks == (2,)
