"""Tests for the inference serving subsystem (repro.serve).

The load-bearing assertions are the ISSUE-7 acceptance criteria:

* a serving run is a pure function of ``(seed, config)`` — bit-identical
  request records, percentiles, goodput and checksum across the ``coop``,
  ``gen`` and ``threads`` runners and the fused/unfused collective paths,
  including non-power-of-two P (where per-rank clocks legitimately
  diverge and the loop's decision-clock sync is what keeps batching
  deterministic);
* the size-adaptive allreduce selector matches or beats both fixed
  choices in a latency-bound and a bandwidth-bound regime.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.comm.fused import LATENCY_OPTIMAL
from repro.errors import ConfigError
from repro.serve import (DynamicBatcher, Request, ServeConfig, Workload,
                         percentile, simulate_serving, sweep_load)


class TestWorkload:
    def test_poisson_deterministic_per_seed(self):
        a = Workload.poisson(20, 1000.0, seed=5)
        b = Workload.poisson(20, 1000.0, seed=5)
        c = Workload.poisson(20, 1000.0, seed=6)
        assert a.requests == b.requests
        assert a.requests != c.requests

    def test_poisson_rate_scales_span(self):
        slow = Workload.poisson(200, 100.0, seed=1)
        fast = Workload.poisson(200, 1000.0, seed=1)
        assert slow.span == pytest.approx(fast.span * 10)

    def test_ranged_token_specs(self):
        wl = Workload.poisson(50, 1000.0, prompt_tokens=(8, 16),
                              output_tokens=(2, 4), seed=2)
        assert all(8 <= rq.prompt_tokens <= 16 for rq in wl.requests)
        assert all(2 <= rq.output_tokens <= 4 for rq in wl.requests)
        assert len({rq.prompt_tokens for rq in wl.requests}) > 1

    def test_json_round_trip(self):
        wl = Workload.poisson(10, 500.0, prompt_tokens=(4, 64), seed=3)
        back = Workload.from_json(wl.to_json())
        assert back.requests == wl.requests

    def test_validation(self):
        with pytest.raises(ConfigError):
            Workload.poisson(0, 100.0)
        with pytest.raises(ConfigError):
            Workload.poisson(5, -1.0)
        with pytest.raises(ConfigError):
            Workload.poisson(5, 100.0, prompt_tokens=0)
        with pytest.raises(ConfigError):
            Workload((Request(0, 1.0, 4, 1), Request(1, 0.5, 4, 1)))

    def test_counters(self):
        wl = Workload.from_arrivals([0.0, 1.0, 2.0], [4, 8, 2], [1, 2, 3])
        assert wl.total_output_tokens == 6
        assert wl.max_prompt_tokens == 8
        assert wl.span == 2.0
        assert len(wl) == 3


def _wl(arrivals, prompt=4, out=2):
    n = len(arrivals)
    return Workload.from_arrivals(arrivals, [prompt] * n, [out] * n)


class TestDynamicBatcher:
    def test_fires_when_full(self):
        b = DynamicBatcher(_wl([0.0, 0.1, 0.2, 0.3]), 2, max_wait=10.0)
        assert b.admit(0.05, 2, False) == []       # one pending, no timeout
        got = b.admit(0.1, 2, False)               # second arrival fills it
        assert [rq.rid for rq in got] == [0, 1]

    def test_fires_on_timeout_with_partial_batch(self):
        b = DynamicBatcher(_wl([0.0]), 4, max_wait=0.5)
        assert b.admit(0.4, 4, False) == []
        got = b.admit(0.5, 4, False)
        assert [rq.rid for rq in got] == [0]

    def test_continuous_batching_piggybacks(self):
        b = DynamicBatcher(_wl([0.0, 0.1]), 4, max_wait=10.0)
        # Engine active: arrived requests join immediately, no trigger.
        got = b.admit(0.05, 3, True)
        assert [rq.rid for rq in got] == [0]
        assert b.admit(0.05, 3, True) == []        # nothing else arrived

    def test_free_slots_cap(self):
        b = DynamicBatcher(_wl([0.0, 0.0, 0.0]), 8, max_wait=0.0)
        got = b.admit(0.0, 2, False)
        assert len(got) == 2
        assert b.pending == 1

    def test_next_decision_closed_form(self):
        b = DynamicBatcher(_wl([1.0, 2.0, 9.0]), 2, max_wait=3.0)
        # Batch of 2 completes at t=2.0, before the t=4.0 timeout.
        assert b.next_decision(0.0) == 2.0
        b.admit(2.0, 2, False)
        # One request left: only its timeout can fire.
        assert b.next_decision(2.0) == 12.0
        b.admit(12.0, 2, False)
        assert b.next_decision(12.0) is None

    def test_admit_at_next_decision_always_fires(self):
        b = DynamicBatcher(_wl([0.5, 1.5, 4.0]), 2, max_wait=2.0)
        t = 0.0
        admitted = []
        while True:
            nxt = b.next_decision(t)
            if nxt is None:
                break
            t = nxt
            got = b.admit(t, 2, False)
            assert got, f"admission must fire at its own decision time {t}"
            admitted += [rq.rid for rq in got]
        assert admitted == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ConfigError):
            DynamicBatcher(_wl([0.0]), 0, 1.0)
        with pytest.raises(ConfigError):
            DynamicBatcher(_wl([0.0]), 1, -1.0)


class TestPercentile:
    def test_interpolates(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        assert percentile(xs, 50.0) == pytest.approx(1.5)
        assert percentile(xs, 0.0) == 0.0
        assert percentile(xs, 100.0) == 3.0
        assert np.isnan(percentile([], 50.0))
        assert percentile([7.0], 99.0) == 7.0


SMOKE = ServeConfig(p=4, rate=2000.0, n_requests=12, prompt_tokens=32,
                    output_tokens=3, max_batch_size=4, seed=0)


class TestServing:
    def test_all_requests_complete_with_ordered_stamps(self):
        rep = simulate_serving(SMOKE)
        assert len(rep.requests) == SMOKE.n_requests
        for rec in rep.requests:
            assert rec.admitted >= rec.arrival
            assert len(rec.token_times) == rec.output_tokens
            assert rec.first_token > rec.admitted
            assert all(b > a for a, b in
                       zip(rec.token_times, rec.token_times[1:]))
        s = rep.summary()
        assert s["ttft_p99"] >= s["ttft_p50"] > 0
        assert s["latency_p99"] >= s["latency_p50"] > 0
        assert s["goodput_tokens_per_s"] > 0
        assert rep.generated_tokens == 3 * SMOKE.n_requests
        assert rep.steps["prefill_batches"] >= 1
        assert rep.steps["decode_steps"] >= 2  # 2 post-prefill tokens each

    @pytest.mark.parametrize("p", [1, 2, 3, 4, 6])
    def test_bit_identical_across_runners_and_fused(self, p):
        cfg = replace(SMOKE, p=p, seed=11)
        base = None
        for runner in ("coop", "gen", "threads"):
            for fused in (True, False):
                rep = simulate_serving(cfg, runner=runner, fused=fused)
                # "unfused-small" notes a wall-clock profitability skip;
                # only coop+fused runs can record it, so it is excluded
                # from the cross-runner semantic comparison.
                algos = {k: v for k, v in rep.algorithms.items()
                         if not k.endswith("/unfused-small")}
                sig = (rep.requests, rep.summary(), rep.steps, algos)
                if base is None:
                    base = sig
                else:
                    assert sig == base, (p, runner, fused)

    def test_pure_function_of_seed(self):
        a = simulate_serving(SMOKE).summary()
        b = simulate_serving(SMOKE).summary()
        c = simulate_serving(replace(SMOKE, seed=9)).summary()
        assert a == b
        assert a != c

    def test_trace_driven_matches_generated(self):
        wl = SMOKE.workload()
        via_trace = simulate_serving(
            SMOKE, workload=Workload.from_json(wl.to_json()))
        assert via_trace.requests == simulate_serving(SMOKE).requests

    def test_adaptive_exercises_both_regimes(self):
        # Default shapes: decode messages (<= 4*256 words) sit below the
        # P=4 crossover (~15000 words), prefill batches (>= 64*256) above.
        rep = simulate_serving(replace(SMOKE, prompt_tokens=64))
        assert f"allreduce/{LATENCY_OPTIMAL}/adaptive" in rep.algorithms
        assert "allreduce/rabenseifner/adaptive" in rep.algorithms

    def test_forced_algorithm_is_used_throughout(self):
        rep = simulate_serving(replace(SMOKE, algorithm="ring"))
        assert list(rep.algorithms) == ["allreduce/ring/forced"]

    @pytest.mark.parametrize("regime, cfg", [
        ("latency_bound", replace(SMOKE, prompt_tokens=4, output_tokens=12,
                                  rate=3000.0, n_requests=16)),
        ("bandwidth_bound", replace(SMOKE, prompt_tokens=192,
                                    output_tokens=1, rate=3000.0,
                                    n_requests=16)),
        ("mixed", replace(SMOKE, prompt_tokens=96, output_tokens=8,
                          n_requests=16)),
    ])
    def test_adaptive_matches_or_beats_fixed(self, regime, cfg):
        # Governing metric per regime (mirrors the BENCH_PERF serving
        # case): p99 inter-token latency when decode-dominated — the
        # makespan of a drained open-loop run is a batching outcome
        # there — and end-to-end makespan otherwise.
        def score(alg):
            rep = simulate_serving(replace(cfg, algorithm=alg))
            if regime == "latency_bound":
                return rep.summary()["itl_p99"]
            return rep.makespan

        scores = {alg: score(alg)
                  for alg in ("latency", "bandwidth", "adaptive")}
        assert scores["adaptive"] <= scores["latency"]
        assert scores["adaptive"] <= scores["bandwidth"]
        if regime == "mixed":  # per-phase optima: strictly beats both
            assert scores["adaptive"] < scores["latency"]
            assert scores["adaptive"] < scores["bandwidth"]

    def test_sweep_load_goodput_saturates(self):
        reps = sweep_load(replace(SMOKE, n_requests=48), [200.0, 50000.0])
        lo, hi = (r.summary() for r in reps)
        assert lo["offered_req_per_s"] < hi["offered_req_per_s"]
        # Under light load goodput tracks the offered rate...
        assert lo["goodput_req_per_s"] == pytest.approx(
            lo["offered_req_per_s"], rel=0.35)
        # ... under heavy load it falls behind (the server saturates).
        assert hi["goodput_req_per_s"] < 0.8 * hi["offered_req_per_s"]
        assert hi["latency_p99"] > lo["latency_p99"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate_serving(replace(SMOKE, p=0))
        with pytest.raises(ConfigError):
            simulate_serving(replace(SMOKE, n_requests=0))
