"""Quantization extension: codec properties and quantized allreduces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.allreduce import make_allreduce
from repro.comm import nwords, run_spmd
from repro.quant import LinearQuantizer, dequantize_coo, quantize_coo
from repro.sparse import COOVector

values32 = hnp.arrays(np.float32, st.integers(1, 100),
                      elements=st.floats(-100, 100, allow_nan=False,
                                         width=32))


class TestCodec:
    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_roundtrip_error_bound(self, bits):
        rng = np.random.default_rng(0)
        v = rng.normal(size=1000).astype(np.float32)
        q = LinearQuantizer(bits)
        out = q.decode(q.encode(v))
        step = q.step_size(float(v.min()), float(v.max()))
        assert np.max(np.abs(out - v)) <= step / 2 + 1e-6

    @given(values32, st.sampled_from([4, 8, 16]))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_within_range(self, v, bits):
        q = LinearQuantizer(bits)
        out = q.decode(q.encode(v))
        assert out.size == v.size
        assert out.min() >= v.min() - 1e-4
        assert out.max() <= v.max() + 1e-4

    def test_stochastic_rounding_unbiased(self):
        q = LinearQuantizer(4, stochastic=True,
                            rng=np.random.default_rng(1))
        v = np.full(20000, 0.35, dtype=np.float32)
        v[0], v[-1] = 0.0, 1.0  # fix the range
        outs = q.decode(q.encode(v))
        assert abs(outs[1:-1].mean() - 0.35) < 0.005

    def test_empty(self):
        q = LinearQuantizer(8)
        qa = q.encode(np.empty(0, dtype=np.float32))
        assert qa.comm_nwords() == 2
        assert q.decode(qa).size == 0

    def test_constant_values(self):
        q = LinearQuantizer(8)
        v = np.full(7, 3.25, dtype=np.float32)
        np.testing.assert_allclose(q.decode(q.encode(v)), v)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            LinearQuantizer(3)

    def test_4bit_packs_two_per_byte(self):
        q = LinearQuantizer(4)
        qa = q.encode(np.linspace(0, 1, 10).astype(np.float32))
        assert qa.codes.nbytes == 5

    def test_wire_size_shrinks_with_bits(self):
        v = np.random.default_rng(2).normal(size=256).astype(np.float32)
        sizes = {b: LinearQuantizer(b).encode(v).comm_nwords()
                 for b in (4, 8, 16)}
        assert sizes[4] < sizes[8] < sizes[16] < 256


class TestQuantizedCOO:
    def test_payload_wire_accounting(self):
        vec = COOVector.from_arrays(1000, np.arange(64, dtype=np.int32),
                                    np.random.default_rng(3).normal(
                                        size=64).astype(np.float32))
        payload = quantize_coo(vec, LinearQuantizer(8))
        # 64 index words + 16 packed value words + 2 range words
        assert payload.comm_nwords() == 64 + 16 + 2
        assert nwords(payload) == payload.comm_nwords()

    def test_dequantize_preserves_support(self):
        vec = COOVector.from_arrays(100, [5, 50, 99], [1.0, -2.0, 3.0])
        q = LinearQuantizer(16)
        back = dequantize_coo(quantize_coo(vec, q), q)
        np.testing.assert_array_equal(back.indices, vec.indices)
        np.testing.assert_allclose(back.values, vec.values, atol=1e-3)


class TestQuantizedAllreduces:
    def _grads(self, p, n=512, seed=5):
        rng = np.random.default_rng(seed)
        return [rng.normal(size=n).astype(np.float32) for _ in range(p)]

    @pytest.mark.parametrize("scheme", ["topka_q", "oktopk_q"])
    def test_approximates_full_precision(self, scheme):
        p, k = 4, 32
        grads = self._grads(p)

        def prog(comm, name, kw):
            algo = make_allreduce(name, k=k, **kw)
            return algo.reduce(comm, grads[comm.rank], 1)

        exact_name = "topka" if scheme == "topka_q" else "oktopk"
        exact_kw = {} if scheme == "topka_q" else {"tau_prime": 1}
        q_kw = dict(exact_kw, bits=16, stochastic=False)
        ref = run_spmd(p, prog, exact_name, exact_kw)[0].update.to_dense()
        got = run_spmd(p, prog, scheme, q_kw)[0].update.to_dense()
        scale = np.abs(ref).max()
        np.testing.assert_allclose(got, ref, atol=2e-3 * scale)

    def test_volume_reduction_measured(self):
        p, n, k = 8, 4096, 128
        grads = self._grads(p, n)

        def prog(comm, name, kw):
            algo = make_allreduce(name, k=k, **kw)
            algo.reduce(comm, grads[comm.rank], 1)
            return int(comm.net.words_recv[comm.rank])

        full = np.mean(run_spmd(p, prog, "topka", {}).results)
        quant = np.mean(run_spmd(
            p, prog, "topka_q", {"bits": 8}).results)
        # 2k words -> ~1.25k words per vector (k idx + k/4 vals + 2)
        assert quant < 0.75 * full

    @pytest.mark.parametrize("bits", [8, 16])
    def test_quantized_oktopk_trains(self, bits):
        """Error feedback keeps quantized training converging to the same
        quality as full precision on a noisy quadratic."""
        p, n = 4, 128
        target = np.linspace(-1, 1, n).astype(np.float32)

        def prog(comm, name, kw):
            from repro.optim import TopkSGD
            algo = make_allreduce(name, k=16, **kw)
            opt = TopkSGD(algo, 0.2, n)
            w = np.zeros(n, dtype=np.float32)
            rng = np.random.default_rng(comm.rank)
            for _ in range(60):
                noise = rng.normal(0, 0.05, size=n).astype(np.float32)
                opt.step(comm, w, (w - target) + noise)
            return float(np.linalg.norm(w - target))

        q_err = max(run_spmd(p, prog, "oktopk_q",
                             {"bits": bits}).results)
        full_err = max(run_spmd(p, prog, "oktopk", {}).results)
        assert q_err < 0.6
        assert q_err <= full_err + 0.25

    def test_all_ranks_agree(self):
        p = 4
        grads = self._grads(p)

        def prog(comm):
            algo = make_allreduce("oktopk_q", k=16, bits=8)
            return algo.reduce(comm, grads[comm.rank], 1).update

        res = run_spmd(p, prog)
        for r in range(1, p):
            assert res[r] == res[0]

    def test_registry_lazy_loading(self):
        """Extension schemes resolve through make_allreduce without an
        explicit import of repro.quant."""
        algo = make_allreduce("topka_q", k=4, bits=4)
        assert algo.quantizer.bits == 4

    def test_unknown_scheme_still_raises(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            make_allreduce("nope")
