"""Cross-runner equivalence: the cooperative and threaded runners must be
observationally identical.

Simulated time is schedule-independent by design (egress booked in sender
program order, ingress in receiver program order), so for any program both
runners must produce bit-identical results, traffic counters and simulated
makespans.  These tests drive the three main scheme families over
randomized inputs under both runners and compare everything exactly.
"""

import numpy as np
import pytest

from repro.allreduce import make_allreduce
from repro.comm import collectives as coll, run_spmd
from repro.sparse import COOVector

RUNNERS = ("coop", "threads")


def _run_both(p, prog, *args):
    return {r: run_spmd(p, prog, *args, runner=r) for r in RUNNERS}


def _assert_network_equal(results):
    a, b = (results[r] for r in RUNNERS)
    assert a.makespan == b.makespan  # exact, not approx
    sa, sb = a.stats, b.stats
    for field in ("words_sent", "words_recv", "msgs_sent", "msgs_recv"):
        np.testing.assert_array_equal(getattr(sa, field), getattr(sb, field))


class TestSchemeEquivalence:
    @pytest.mark.parametrize("scheme", ["dense", "gtopk", "oktopk"])
    @pytest.mark.parametrize("p", [4, 8])
    def test_identical_updates_stats_makespan(self, scheme, p):
        n, iters = 1536, 3

        def prog(comm):
            algo = make_allreduce(
                scheme, **({} if scheme == "dense" else {"density": 0.05}))
            rng = np.random.default_rng(123 + comm.rank)
            outs = []
            for t in range(1, iters + 1):
                acc = rng.normal(size=n).astype(np.float32)
                res = algo.reduce(comm, acc, t)
                upd = res.update
                outs.append(upd.to_dense() if isinstance(upd, COOVector)
                            else np.asarray(upd))
            return np.concatenate(outs)

        results = _run_both(p, prog)
        _assert_network_equal(results)
        for ra, rb in zip(results["coop"].results, results["threads"].results):
            np.testing.assert_array_equal(ra, rb)  # bit-identical

    @pytest.mark.parametrize("p", [3, 8])
    def test_collectives_equivalence(self, p):
        def prog(comm):
            rng = np.random.default_rng(7 + comm.rank)
            x = rng.normal(size=777).astype(np.float32)
            out = [coll.allreduce(comm, x, algo=a)
                   for a in ("ring", "recursive_doubling", "rabenseifner")]
            block = rng.normal(size=5 + comm.rank).astype(np.float32)
            out.append(np.concatenate(coll.allgatherv(comm, block)))
            return np.concatenate(out)

        results = _run_both(p, prog)
        _assert_network_equal(results)
        for ra, rb in zip(results["coop"].results, results["threads"].results):
            np.testing.assert_array_equal(ra, rb)

    def test_point_to_point_clocks_identical(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            clocks = []
            for it in range(6):
                data = rng.normal(size=rng.integers(1, 257)).astype(np.float32)
                dst = (comm.rank + 1 + it) % comm.size
                src = (comm.rank - 1 - it) % comm.size
                comm.sendrecv(data, dst, src, it)
                clocks.append(comm.clock)
            return clocks

        results = _run_both(6, prog)
        _assert_network_equal(results)
        assert results["coop"].results == results["threads"].results


class TestTrafficEquivalenceRandomized:
    def test_random_waitall_pattern(self):
        """Randomized isend/irecv/waitall mesh, exact equality."""
        def prog(comm):
            rng = np.random.default_rng(31 + comm.rank)
            total = np.zeros(64, dtype=np.float64)
            for it in range(5):
                reqs = []
                for s in range(1, comm.size):
                    peer_out = (comm.rank + s) % comm.size
                    peer_in = (comm.rank - s) % comm.size
                    payload = rng.normal(size=64).astype(np.float32)
                    reqs.append(comm.isend(payload, peer_out, tag=it))
                    reqs.append(comm.irecv(peer_in, tag=it))
                for got in comm.waitall(reqs):
                    if got is not None:
                        total += got
            return total

        results = _run_both(5, prog)
        _assert_network_equal(results)
        for ra, rb in zip(results["coop"].results, results["threads"].results):
            np.testing.assert_array_equal(ra, rb)
