"""Semantic correctness of the six allreduce schemes against references.

Reference semantics (Section 3.1):

* Dense / DenseOvlp: exact sum over workers.
* TopkA / Gaussiank / TopkDSA: sum over workers of the *locally selected*
  sparse gradients (no values lost; support is the union -> fill-in).
* gTopk: hierarchical approximation of Topk(sum of local top-k).
* Ok-Topk: Topk(sum_i Topk(G_i)) — exact when thresholds are re-evaluated
  every iteration (tau' = 1) and there are no magnitude ties.
"""

import numpy as np
import pytest

from repro.allreduce import make_allreduce
from repro.comm import run_spmd
from repro.sparse import COOVector, combine_sum, exact_topk

N = 512
K = 32


def grad(rank: int, t: int = 1, n: int = N, seed: int = 77) -> np.ndarray:
    rng = np.random.default_rng(seed + 1000 * t + rank)
    return rng.normal(size=n).astype(np.float32)


def run_scheme(name: str, p: int, t: int = 1, n: int = N, **kwargs):
    def prog(comm):
        algo = make_allreduce(name, **kwargs)
        return algo.reduce(comm, grad(comm.rank, t, n), t)

    return run_spmd(p, prog)


def local_topk_sum(p: int, k: int = K, t: int = 1, n: int = N) -> COOVector:
    return combine_sum([exact_topk(grad(r, t, n), k) for r in range(p)])


class TestDense:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("name", ["dense", "dense_ovlp"])
    def test_exact_sum(self, p, name):
        res = run_scheme(name, p)
        expect = np.sum([grad(r) for r in range(p)], axis=0)
        for r in range(p):
            np.testing.assert_allclose(res[r].update, expect,
                                       rtol=1e-4, atol=1e-5)
            assert res[r].contributed_indices is None

    def test_dense_ovlp_flag(self):
        res = run_scheme("dense_ovlp", 4)
        assert res[0].overlappable
        assert res[0].info["nbuckets"] >= 1


class TestTopkA:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_sum_of_local_topk(self, p):
        res = run_scheme("topka", p, k=K)
        expect = local_topk_sum(p)
        for r in range(p):
            got = res[r].update
            got.validate()
            np.testing.assert_allclose(got.to_dense(), expect.to_dense(),
                                       rtol=1e-4, atol=1e-5)

    def test_contributed_are_local_topk(self):
        res = run_scheme("topka", 4, k=K)
        for r in range(4):
            np.testing.assert_array_equal(
                res[r].contributed_indices, exact_topk(grad(r), K).indices)

    def test_fill_in_reported(self):
        res = run_scheme("topka", 8, k=K)
        assert res[0].info["fill_in"] > 1.0  # supports barely overlap


class TestTopkDSA:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_matches_sum_of_local_topk(self, p):
        res = run_scheme("topkdsa", p, k=K)
        expect = local_topk_sum(p)
        for r in range(p):
            got = res[r].update
            got.validate()
            np.testing.assert_allclose(got.to_dense(), expect.to_dense(),
                                       rtol=1e-4, atol=1e-5)

    def test_dense_switch_on_high_density(self):
        """With k*P comparable to n the working set must densify."""
        res = run_scheme("topkdsa", 8, n=256, k=64)
        assert any(res[r].info["switched_to_dense"] for r in range(8))
        # correctness preserved
        expect = combine_sum(
            [exact_topk(grad(r, 1, 256), 64) for r in range(8)])
        np.testing.assert_allclose(res[0].update.to_dense(),
                                   expect.to_dense(), rtol=1e-4, atol=1e-5)

    def test_switch_can_be_disabled(self):
        res = run_scheme("topkdsa", 8, n=256, k=64, allow_dense_switch=False)
        assert not any(res[r].info["switched_to_dense"] for r in range(8))


class TestGTopk:
    @pytest.mark.parametrize("p", [1, 2, 4, 8])
    def test_output_has_at_most_k_entries(self, p):
        res = run_scheme("gtopk", p, k=K)
        for r in range(p):
            assert res[r].update.nnz <= K
            res[r].update.validate()

    def test_all_ranks_agree(self):
        res = run_scheme("gtopk", 8, k=K)
        for r in range(1, 8):
            assert res[r].update == res[0].update

    def test_two_ranks_exact(self):
        """For P=2 the tree has one level: result is exactly
        Topk(topk(g0) + topk(g1))."""
        res = run_scheme("gtopk", 2, k=K)
        expect = local_topk_sum(2).topk(K)
        assert res[0].update == expect

    def test_contributed_subset_of_final(self):
        res = run_scheme("gtopk", 4, k=K)
        for r in range(4):
            c = res[r].contributed_indices
            assert np.isin(c, res[r].update.indices).all()
            assert np.isin(c, exact_topk(grad(r), K).indices).all()


class TestGaussiank:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_update_is_sum_of_contributions(self, p):
        res = run_scheme("gaussiank", p, k=K)
        expect = combine_sum([
            COOVector.from_dense(grad(r), res[r].contributed_indices)
            for r in range(p)])
        for r in range(p):
            np.testing.assert_allclose(res[r].update.to_dense(),
                                       expect.to_dense(),
                                       rtol=1e-4, atol=1e-5)

    def test_adjustment_reaches_three_quarters(self):
        res = run_scheme("gaussiank", 2, k=K)
        for r in range(2):
            assert res[r].info["selected"] >= 0.75 * K * 0.99


class TestOkTopk:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_exact_semantics_with_fresh_thresholds(self, p):
        """tau'=1: u_t == Topk(sum_i Topk(acc_i)) exactly (continuous data,
        no ties)."""
        res = run_scheme("oktopk", p, k=K, tau_prime=1)
        expect = local_topk_sum(p).topk(K)
        for r in range(p):
            got = res[r].update
            got.validate()
            assert got == expect

    def test_all_ranks_agree(self):
        res = run_scheme("oktopk", 8, k=K)
        for r in range(1, 8):
            assert res[r].update == res[0].update

    def test_contributed_is_intersection(self):
        res = run_scheme("oktopk", 4, k=K, tau_prime=1)
        for r in range(4):
            local = exact_topk(grad(r), K)
            expect = np.intersect1d(local.indices, res[r].update.indices,
                                    assume_unique=True)
            np.testing.assert_array_equal(res[r].contributed_indices, expect)

    @pytest.mark.parametrize("rotation", [True, False])
    @pytest.mark.parametrize("balanced", [True, False])
    def test_options_preserve_semantics(self, rotation, balanced):
        res = run_scheme("oktopk", 4, k=K, tau_prime=1, rotation=rotation,
                         balanced_partition=balanced)
        expect = local_topk_sum(4).topk(K)
        assert res[0].update == expect

    @pytest.mark.parametrize("bucket_size", [1, 2, 16])
    def test_bucket_size_preserves_semantics(self, bucket_size):
        res = run_scheme("oktopk", 5, k=K, tau_prime=1,
                         bucket_size=bucket_size)
        expect = local_topk_sum(5).topk(K)
        assert res[0].update == expect

    def test_data_balancing_preserves_semantics(self):
        """Force skew: one worker holds all top-k values."""
        def prog(comm):
            algo = make_allreduce("oktopk", k=K, tau_prime=1,
                                  balanced_partition=False,
                                  balance_trigger=1.5)
            acc = np.zeros(N, dtype=np.float32)
            if True:  # every worker's top-k lives in region 0
                rng = np.random.default_rng(comm.rank)
                acc[:N // 8] = rng.normal(size=N // 8) * 10
            return algo.reduce(comm, acc, 1), algo.balancing_triggered

        res = run_spmd(8, prog)
        result0, triggered = res[0]
        assert triggered == 1
        # reference
        accs = []
        for r in range(8):
            acc = np.zeros(N, dtype=np.float32)
            rng = np.random.default_rng(r)
            acc[:N // 8] = rng.normal(size=N // 8) * 10
            accs.append(acc)
        expect = combine_sum([exact_topk(a, K) for a in accs]).topk(K)
        assert result0.update == expect

    def test_threshold_reuse_counts(self):
        """tau'=4 over 8 iterations: exactly 2 local re-evaluations."""
        def prog(comm):
            algo = make_allreduce("oktopk", k=K, tau_prime=4, tau=4,
                                  selection_guard=100.0)
            for t in range(1, 9):
                algo.reduce(comm, grad(comm.rank, t), t)
            return algo.local_evaluations, algo.global_evaluations, \
                algo.repartitions

        res = run_spmd(2, prog)
        local_evals, global_evals, reparts = res[0]
        assert local_evals == 2
        assert global_evals == 2
        assert reparts == 2

    def test_zero_gradient_degenerates_gracefully(self):
        def prog(comm):
            algo = make_allreduce("oktopk", k=K)
            return algo.reduce(comm, np.zeros(N, dtype=np.float32), 1)

        res = run_spmd(4, prog)
        assert res[0].update.nnz <= K

    def test_approximate_semantics_with_reused_thresholds(self):
        """With tau'=8 and slowly-drifting gradients the selected counts
        stay near k (the Section 5.2 claim)."""
        def prog(comm):
            algo = make_allreduce("oktopk", k=K, tau_prime=8)
            counts = []
            rng = np.random.default_rng(123 + comm.rank)
            scale = 1.0
            for t in range(1, 17):
                scale *= 0.995
                acc = (rng.normal(size=N) * scale).astype(np.float32)
                r = algo.reduce(comm, acc, t)
                counts.append(r.info["selected_local"])
            return counts

        res = run_spmd(4, prog)
        counts = np.array(res[0])
        assert np.all(counts >= K / 3)
        assert np.all(counts <= 3 * K)
        assert abs(np.mean(counts) - K) / K < 0.25


class TestOddWorkerCounts:
    """Non-power-of-two P for the tree/halving schemes."""

    @pytest.mark.parametrize("p", [3, 5, 6, 7])
    def test_gtopk_odd_p(self, p):
        res = run_scheme("gtopk", p, k=K)
        for r in range(1, p):
            assert res[r].update == res[0].update
        assert res[0].update.nnz <= K

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_gaussiank_odd_p(self, p):
        res = run_scheme("gaussiank", p, k=K)
        expect = combine_sum([
            COOVector.from_dense(grad(r), res[r].contributed_indices)
            for r in range(p)])
        np.testing.assert_allclose(res[0].update.to_dense(),
                                   expect.to_dense(), rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("p", [3, 6, 7])
    def test_oktopk_odd_p_steady_state(self, p):
        """Multiple iterations at odd P (Bruck paths, rotation schedule)."""
        def prog(comm):
            algo = make_allreduce("oktopk", k=K, tau_prime=2)
            outs = []
            for t in range(1, 5):
                outs.append(algo.reduce(comm, grad(comm.rank, t), t).update)
            return outs

        res = run_spmd(p, prog)
        for t in range(4):
            for r in range(1, p):
                assert res[r][t] == res[0][t]
