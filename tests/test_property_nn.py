"""Property-based tests for the nn stack: shape algebra and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import LSTM, LayerNorm, Linear, MaxPool2d, ReLU, Sequential


class TestShapeProperties:
    @given(st.integers(1, 4), st.integers(1, 6), st.integers(1, 6),
           st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_linear_backward_shape_matches_input(self, b, din, dout, seed):
        lin = Linear(din, dout, rng=np.random.default_rng(seed))
        x = np.random.default_rng(seed + 1).normal(
            size=(b, din)).astype(np.float32)
        y = lin.forward(x)
        assert y.shape == (b, dout)
        dx = lin.backward(np.ones_like(y))
        assert dx.shape == x.shape

    @given(st.integers(1, 3), st.integers(1, 4), st.integers(1, 5),
           st.integers(1, 4), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_lstm_output_shape(self, b, t, d, h, seed):
        lstm = LSTM(d, h, rng=np.random.default_rng(seed))
        x = np.random.default_rng(seed + 1).normal(
            size=(b, t, d)).astype(np.float32)
        y = lstm.forward(x)
        assert y.shape == (b, t, h)
        assert lstm.backward(np.ones_like(y)).shape == x.shape

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 4),
           st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_maxpool_halves_dimensions(self, b, c, half, seed):
        mp = MaxPool2d(2)
        hw = 2 * half
        x = np.random.default_rng(seed).normal(
            size=(b, c, hw, hw)).astype(np.float32)
        y = mp.forward(x)
        assert y.shape == (b, c, half, half)
        # pooled values are true window maxima
        assert np.all(y <= x.max())


class TestLayerInvariants:
    @given(st.integers(2, 16), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_layernorm_output_statistics(self, d, seed):
        ln = LayerNorm(d)
        x = (np.random.default_rng(seed).normal(size=(3, d)) * 5 + 2
             ).astype(np.float32)
        y = ln.forward(x)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-4)
        if d > 2:
            np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=0.05)

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_relu_gradient_masks_match(self, seed):
        r = ReLU()
        x = np.random.default_rng(seed).normal(size=(4, 8)).astype(
            np.float32)
        y = r.forward(x)
        dy = np.ones_like(y)
        dx = r.backward(dy)
        np.testing.assert_array_equal(dx != 0, y > 0)

    @given(st.integers(1, 4), st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_sequential_backward_is_reverse_composition(self, depth, seed):
        layers = []
        d = 6
        rng = np.random.default_rng(seed)
        for _ in range(depth):
            layers.extend([Linear(d, d, rng=rng), ReLU()])
        net = Sequential(*layers)
        x = rng.normal(size=(2, d)).astype(np.float32)
        y = net.forward(x)
        dx = net.backward(np.ones_like(y))
        assert dx.shape == x.shape
        # Gradients accumulate in every parameterized layer — unless some
        # ReLU killed the whole signal (all units dead), in which case zero
        # gradients upstream of it are the *correct* answer.  Hypothesis
        # found such a dead-layer example (depth=3, seed=1), so the
        # property must be conditioned on a live activation path.
        path_alive = all(np.any(r._mask) for r in layers[1::2])
        if path_alive:
            assert all(np.any(p.grad != 0) or np.all(p.data == 0)
                       for lin in layers[::2] for p in [lin.W])
