"""Property-based tests for the dense collectives over random P, shapes
and payload sizes."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.comm import collectives as coll, run_spmd


@st.composite
def pn(draw):
    p = draw(st.integers(1, 7))
    n = draw(st.integers(1, 100))
    seed = draw(st.integers(0, 1000))
    return p, n, seed


def _vec(rank, n, seed):
    return np.random.default_rng(seed * 100 + rank).normal(
        size=n).astype(np.float32)


class TestAllreduceProperty:
    @given(pn(), st.sampled_from(["ring", "recursive_doubling",
                                  "rabenseifner"]))
    @settings(max_examples=30, deadline=None)
    def test_matches_numpy_sum(self, cfg, algo):
        p, n, seed = cfg

        def prog(comm):
            return coll.allreduce(comm, _vec(comm.rank, n, seed), algo=algo)

        res = run_spmd(p, prog)
        expect = np.sum([_vec(r, n, seed) for r in range(p)], axis=0)
        for r in range(p):
            np.testing.assert_allclose(res[r], expect, rtol=1e-3,
                                       atol=1e-3)


class TestAllgathervProperty:
    @given(st.integers(1, 7), st.lists(st.integers(0, 20), min_size=7,
                                       max_size=7),
           st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_block_sizes(self, p, sizes, seed):
        def prog(comm):
            block = _vec(comm.rank, sizes[comm.rank] + 1, seed)
            return coll.allgatherv(comm, block)

        res = run_spmd(p, prog)
        for r in range(p):
            assert len(res[r]) == p
            for owner in range(p):
                np.testing.assert_array_equal(
                    res[r][owner], _vec(owner, sizes[owner] + 1, seed))

    @given(st.integers(2, 7), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_receive_volume_total_minus_own(self, p, b):
        def prog(comm):
            before = int(comm.net.words_recv[comm.rank])
            coll.allgatherv(comm, np.zeros(b, dtype=np.float32))
            return int(comm.net.words_recv[comm.rank]) - before

        res = run_spmd(p, prog)
        for r in range(p):
            assert res[r] >= (p - 1) * b
            assert res[r] <= (p - 1) * b + 4 * p  # owner-id overhead


class TestAlltoallvProperty:
    @given(st.integers(1, 6), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_transpose_identity(self, p, seed):
        """alltoallv twice with transposed indexing restores the data."""
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 100, size=(p, p))

        def prog(comm):
            blocks = [int(payload[comm.rank, j]) for j in range(p)]
            got = coll.alltoallv(comm, blocks)
            back = coll.alltoallv(comm, got)
            return blocks, back

        res = run_spmd(p, prog)
        for r in range(p):
            sent, back = res[r]
            assert back == sent


class TestBcastReduceDuality:
    @given(pn())
    @settings(max_examples=25, deadline=None)
    def test_reduce_then_bcast_equals_allreduce(self, cfg):
        p, n, seed = cfg

        def prog(comm):
            acc = coll.reduce(comm, _vec(comm.rank, n, seed), root=0)
            return coll.bcast(comm, acc, root=0)

        res = run_spmd(p, prog)
        expect = np.sum([_vec(r, n, seed) for r in range(p)], axis=0)
        for r in range(p):
            np.testing.assert_allclose(res[r], expect, rtol=1e-3,
                                       atol=1e-3)
