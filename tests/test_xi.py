"""ξ measurement (Assumption 1) and its non-perturbing instrumentation."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.train import measure_xi, xi_value


class TestXiValue:
    def test_identical_workers_give_zero(self):
        rng = np.random.default_rng(0)
        acc = rng.normal(size=100).astype(np.float32)
        xi = xi_value([acc, acc.copy()], [acc, acc.copy()], k=10)
        assert xi == pytest.approx(0.0, abs=1e-6)

    def test_truncated_common_mass_gives_positive_xi(self):
        """An index that both workers individually truncate (idx 1) can top
        the true mean: the applied update then differs -> xi > 0."""
        n = 20
        a = np.zeros(n, dtype=np.float32)
        b = np.zeros(n, dtype=np.float32)
        a[0], a[1] = 1.0, 0.9
        b[2], b[1] = 1.0, 0.9
        xi = xi_value([a, b], [a, b], k=1)
        assert xi > 0

    def test_zero_gradient_zero_gap(self):
        z = np.zeros(10, dtype=np.float32)
        assert xi_value([z, z], [z, z], k=2) == 0.0

    def test_scale_invariance_of_ratio(self):
        rng = np.random.default_rng(3)
        accs = [rng.normal(size=50).astype(np.float32) for _ in range(3)]
        x1 = xi_value(accs, accs, k=5)
        scaled = [10 * a for a in accs]
        x2 = xi_value(scaled, scaled, k=5)
        assert x1 == pytest.approx(x2, rel=1e-4)


class TestMeasureXi:
    def test_collective_agreement(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            acc = rng.normal(size=64).astype(np.float32)
            return measure_xi(comm, acc, acc, k=8)

        res = run_spmd(4, prog)
        assert all(r == res[0] for r in res.results)
        assert res[0] >= 0

    @pytest.mark.parametrize("runner", ["coop", "threads"])
    def test_measurement_fully_invisible(self, runner):
        """Regression: a run instrumented with ξ must be bit-identical —
        clocks, link occupancy, words AND message counters — to the same
        run without it.  (The old global-checkpoint scheme leaked its
        trailing barrier into the clocks/message counters, and peers
        could still be draining barrier traffic when rank 0 restored.)"""
        from repro.comm import collectives as coll

        def prog(comm, with_xi):
            rng = np.random.default_rng(comm.rank)
            # surrounding "real" traffic before and after the measurement
            acc = rng.normal(size=256).astype(np.float32)
            coll.allreduce(comm, acc)
            if with_xi:
                measure_xi(comm, acc, acc, k=8)
            out = coll.allreduce(comm, acc * 2)
            return float(out.sum()), comm.clock

        plain = run_spmd(4, prog, False, runner=runner)
        with_xi = run_spmd(4, prog, True, runner=runner)
        assert list(with_xi.results) == list(plain.results)
        assert [with_xi.network.clocks[r] for r in range(4)] == \
               [plain.network.clocks[r] for r in range(4)]
        assert [with_xi.network.egress_free[r] for r in range(4)] == \
               [plain.network.egress_free[r] for r in range(4)]
        assert [with_xi.network.ingress_free[r] for r in range(4)] == \
               [plain.network.ingress_free[r] for r in range(4)]
        for field in ("words_sent", "words_recv", "msgs_sent", "msgs_recv"):
            assert np.array_equal(getattr(with_xi.stats, field),
                                  getattr(plain.stats, field)), field

    @pytest.mark.parametrize("runner", ["coop", "threads"])
    def test_trainer_xi_every_bit_identical(self, runner):
        """End-to-end regression: xi_every=N leaves clocks, traffic,
        per-iteration records and the trained parameters bit-identical to
        xi_every=0 (only the recorded ξ values differ)."""
        from repro.comm import NetworkModel
        from repro.data import ShardedLoader, make_cifar_like
        from repro.nn.activation import ReLU
        from repro.nn.linear import Linear
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.nn.module import FlatModel, Flatten, Sequential
        from repro.train import Trainer, TrainerConfig

        def prog(comm, xi_every):
            rng = np.random.default_rng(5)
            mod = Sequential(Flatten(), Linear(48, 16, rng=rng), ReLU(),
                             Linear(16, 10, rng=rng))
            model = FlatModel(mod, SoftmaxCrossEntropy(),
                              flops_per_sample=2.0 * 48 * 16)
            train, _ = make_cifar_like(32, 8, image_size=4, noise=0.5,
                                       seed=0)
            loader = ShardedLoader(train, 8, comm.rank, comm.size, seed=1)
            cfg = TrainerConfig(iterations=4, scheme="topka", lr=0.05,
                                density=0.1, xi_every=xi_every)
            rec = Trainer(comm, model, loader, cfg).run()
            return rec, model.params_flat.copy()

        net = NetworkModel(alpha=5e-6, beta=5e-7, flop_time=2e-10)
        base = run_spmd(2, prog, 0, model=net, runner=runner)
        inst = run_spmd(2, prog, 2, model=net, runner=runner)
        for r in range(2):
            rec_b, params_b = base[r]
            rec_i, params_i = inst[r]
            assert np.array_equal(params_b, params_i)
            for rb, ri in zip(rec_b.records, rec_i.records):
                assert rb.iteration_time == ri.iteration_time
                assert rb.compute_time == ri.compute_time
                assert rb.comm_time == ri.comm_time
                assert rb.words_recv == ri.words_recv
                assert rb.loss == ri.loss
        assert [base.network.clocks[r] for r in range(2)] == \
               [inst.network.clocks[r] for r in range(2)]
        for field in ("words_sent", "words_recv", "msgs_sent", "msgs_recv"):
            assert np.array_equal(getattr(base.stats, field),
                                  getattr(inst.stats, field)), field
        assert [r.xi for r in inst[0][0].records if r.xi is not None]
