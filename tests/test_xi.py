"""ξ measurement (Assumption 1) and its non-perturbing instrumentation."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.train import measure_xi, xi_value


class TestXiValue:
    def test_identical_workers_give_zero(self):
        rng = np.random.default_rng(0)
        acc = rng.normal(size=100).astype(np.float32)
        xi = xi_value([acc, acc.copy()], [acc, acc.copy()], k=10)
        assert xi == pytest.approx(0.0, abs=1e-6)

    def test_truncated_common_mass_gives_positive_xi(self):
        """An index that both workers individually truncate (idx 1) can top
        the true mean: the applied update then differs -> xi > 0."""
        n = 20
        a = np.zeros(n, dtype=np.float32)
        b = np.zeros(n, dtype=np.float32)
        a[0], a[1] = 1.0, 0.9
        b[2], b[1] = 1.0, 0.9
        xi = xi_value([a, b], [a, b], k=1)
        assert xi > 0

    def test_zero_gradient_zero_gap(self):
        z = np.zeros(10, dtype=np.float32)
        assert xi_value([z, z], [z, z], k=2) == 0.0

    def test_scale_invariance_of_ratio(self):
        rng = np.random.default_rng(3)
        accs = [rng.normal(size=50).astype(np.float32) for _ in range(3)]
        x1 = xi_value(accs, accs, k=5)
        scaled = [10 * a for a in accs]
        x2 = xi_value(scaled, scaled, k=5)
        assert x1 == pytest.approx(x2, rel=1e-4)


class TestMeasureXi:
    def test_collective_agreement(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            acc = rng.normal(size=64).astype(np.float32)
            return measure_xi(comm, acc, acc, k=8)

        res = run_spmd(4, prog)
        assert all(r == res[0] for r in res.results)
        assert res[0] >= 0

    def test_measurement_does_not_perturb_stats(self):
        """The gathers for ξ must not change volume counters or clocks
        (beyond the surrounding barriers)."""
        def prog(comm, with_xi):
            rng = np.random.default_rng(comm.rank)
            acc = rng.normal(size=256).astype(np.float32)
            if with_xi:
                measure_xi(comm, acc, acc, k=8)
            return int(comm.net.words_recv[comm.rank])

        plain = run_spmd(4, prog, False)
        with_xi = run_spmd(4, prog, True)
        assert list(with_xi.results) == list(plain.results)
