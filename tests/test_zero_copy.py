"""Zero-copy send-path safety.

The cooperative runner ships ndarray payloads as read-only views.  The
contract (see :mod:`repro.comm.communicator`):

* a buffer passed to ``isend`` is **on loan** until the message is
  delivered or the request is waited on — mutating it mid-flight raises
  instead of corrupting the receiver;
* once ``wait()`` returns the buffer is genuinely reusable (a
  still-undelivered message is sealed with a snapshot at that point);
* blocking ``send`` keeps eager semantics: the buffer is reusable the
  moment the call returns;
* received arrays are read-only; receivers that mutate must ``copy()``.

The property test drives randomized payload sizes and mutation patterns
under BOTH runners and asserts the receiver always observes the values
from before the (legal) mutation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import collectives, run_spmd
from repro.errors import RankFailedError

RUNNERS = ("coop", "threads")


class TestSenderMutation:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_mutate_after_blocking_send(self, runner):
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(64, dtype=np.float32)
                comm.send(buf, dest=1)
                buf[:] = -1.0  # legal: eager send, buffer reusable
                return None
            return comm.recv(0)

        res = run_spmd(2, prog, runner=runner)
        np.testing.assert_array_equal(res[1], np.ones(64, dtype=np.float32))

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_mutate_after_isend_wait(self, runner):
        """MPI contract: after wait() the buffer is reusable."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(64, dtype=np.float32)
                req = comm.isend(buf, dest=1)
                req.wait()
                buf[:] = -1.0  # legal: request completed
                return None
            return comm.recv(0)

        res = run_spmd(2, prog, runner=runner)
        np.testing.assert_array_equal(res[1], np.ones(64, dtype=np.float32))

    def test_mutate_between_isend_and_wait_raises_coop(self):
        """Cooperative mode write-locks the loaned buffer: the illegal
        mutation fails loudly instead of corrupting the receiver."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(64, dtype=np.float32)
                req = comm.isend(buf, dest=1)
                try:
                    buf[:] = -1.0  # illegal: buffer on loan
                    raise AssertionError("loaned buffer was writable")
                except ValueError:
                    pass
                req.wait()
                return None
            return comm.recv(0)

        res = run_spmd(2, prog, runner="coop")
        np.testing.assert_array_equal(res[1], np.ones(64, dtype=np.float32))

    def test_mutate_between_isend_and_wait_threads_is_safe(self):
        """The threaded runner deep-copies at post time, so even the
        contract-violating mutation cannot corrupt the receiver."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(64, dtype=np.float32)
                req = comm.isend(buf, dest=1)
                buf[:] = -1.0
                req.wait()
                return None
            return comm.recv(0)

        res = run_spmd(2, prog, runner="threads")
        np.testing.assert_array_equal(res[1], np.ones(64, dtype=np.float32))

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_same_buffer_loaned_to_many_peers(self, runner):
        def prog(comm):
            if comm.rank == 0:
                buf = np.full(32, 7.0, dtype=np.float32)
                reqs = [comm.isend(buf, dest=d) for d in (1, 2, 3)]
                for r in reqs:
                    r.wait()
                buf[:] = 0.0
                return None
            return comm.recv(0)

        res = run_spmd(4, prog, runner=runner)
        for r in (1, 2, 3):
            np.testing.assert_array_equal(res[r],
                                          np.full(32, 7.0, dtype=np.float32))

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_view_payload_falls_back_to_snapshot(self, runner):
        """A view of a bigger buffer cannot be write-locked reliably, so the
        loan path snapshots it; mutating through the base stays safe."""
        def prog(comm):
            if comm.rank == 0:
                base = np.arange(100, dtype=np.float32)
                req = comm.isend(base[10:20], dest=1)
                base[:] = -1.0  # mutate through the base, not the view
                req.wait()
                return None
            return comm.recv(0)

        res = run_spmd(2, prog, runner=runner)
        np.testing.assert_array_equal(res[1],
                                      np.arange(10, 20, dtype=np.float32))


class TestOwnershipTransfer:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_receiver_retains_array_across_sender_reuse(self, runner):
        """A receiver may hold a received array indefinitely: the sender
        legally reusing its buffer after wait() must never reach it."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(16, dtype=np.float32)
                req = comm.isend(buf, dest=1)
                comm.recv(1, tag=4)  # ack: receiver has consumed
                req.wait()
                buf[:] = -1.0  # legal reuse; must not alias receiver's copy
                comm.send(None, 1, tag=5)
                return None
            got = comm.recv(0)  # retained WITHOUT copy across blocking calls
            comm.send(1, dest=0, tag=4)
            comm.recv(0, tag=5)  # sender has mutated by now
            return got

        res = run_spmd(2, prog, runner=runner)
        np.testing.assert_array_equal(res[1], np.ones(16, dtype=np.float32))

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_readonly_view_of_writable_base_is_snapshotted(self, runner):
        """A read-only *view* does not make the underlying buffer immutable;
        the send path must snapshot it or mutation through the base would
        corrupt the receiver."""
        def prog(comm):
            if comm.rank == 0:
                base = np.ones(16, dtype=np.float32)
                view = base[:8]
                view.setflags(write=False)
                req = comm.isend(view, dest=1)
                comm.recv(1, tag=4)
                base[:] = -1.0  # mutate through the writable base
                req.wait()
                comm.send(None, 1, tag=5)
                return None
            got = comm.recv(0)
            comm.send(1, dest=0, tag=4)
            comm.recv(0, tag=5)
            return got

        res = run_spmd(2, prog, runner=runner)
        np.testing.assert_array_equal(res[1], np.ones(8, dtype=np.float32))


class TestLoanAliases:
    def test_readonly_alias_of_loaned_buffer_joins_loan(self):
        """A read-only view of a buffer that is already on loan must stay
        protected until the LAST in-flight message ends — delivery of the
        first message must not thaw the buffer under the second."""
        def prog(comm):
            if comm.rank == 0:
                arr = np.arange(8, dtype=np.float32)
                r1 = comm.isend(arr, dest=1, tag=1)      # loans arr
                r2 = comm.isend(arr[:], dest=1, tag=2)   # read-only alias
                comm.recv(1, tag=3)  # rank 1 consumed tag 1 only
                try:
                    arr[0] = 99.0
                    mutated = "mutated (BAD: alias still in flight)"
                except ValueError:
                    mutated = "locked"
                r1.wait()
                r2.wait()
                arr[0] = 99.0  # both flights over: legal now
                comm.send(None, 1, tag=4)
                return mutated
            first = comm.recv(0, tag=1).copy()
            comm.send(1, dest=0, tag=3)
            comm.recv(0, tag=4)
            second = comm.recv(0, tag=2)
            return first, second.tolist()

        res = run_spmd(2, prog, runner="coop")
        assert res[0] == "locked"
        _, second = res[1]
        assert second == list(range(8))  # untouched by the sender's writes


class TestLoanDrain:
    def test_unreceived_isend_does_not_leak_readonly_buffer(self):
        """A message posted but never received (legal, eager semantics)
        must not leave the sender's array locked after run_spmd returns."""
        def prog(comm):
            if comm.rank == 0:
                arr = np.ones(4, dtype=np.float32)
                comm.isend(arr, dest=1, tag=5)  # rank 1 never receives it
                return arr
            return None

        res = run_spmd(2, prog, runner="coop")
        arr = res[0]
        assert arr.flags.writeable  # loan drained at section end
        arr[0] = 2.0  # and genuinely reusable
        assert run_spmd(2, prog, runner="coop").network._loans == {}

    def test_abort_releases_loans(self):
        def prog(comm):
            if comm.rank == 0:
                arr = np.ones(4, dtype=np.float32)
                comm.isend(arr, dest=1, tag=5)
                comm.recv(1, tag=6)  # never posted -> deadlock abort
                return arr
            raise RuntimeError("boom")

        with pytest.raises(RankFailedError):
            run_spmd(2, prog, runner="coop")


class TestPollingProgress:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_busy_poll_test_makes_progress(self, runner):
        """``while not req.test()`` must not starve the prospective sender
        (the cooperative try_match yields the token on a miss)."""
        def prog(comm):
            if comm.rank == 0:
                comm.compute(1.0)  # sender is deliberately "late"
                comm.send(np.arange(4, dtype=np.float32), dest=1)
                return None
            req = comm.irecv(0)
            spins = 0
            while not req.test():
                spins += 1
                assert spins < 1_000_000, "test() loop starved the sender"
            return req.wait()

        res = run_spmd(2, prog, runner=runner)
        np.testing.assert_array_equal(res[1], np.arange(4, dtype=np.float32))

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_bounded_poll_then_give_up_is_legal(self, runner):
        """A program may poll a receive that is not (yet) matchable a
        bounded number of times and then move on — the engine must answer
        False, never abort, and progress resumes once the poller acts."""
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1, tag=1)
                tries = 0
                while not req.test() and tries < 25:
                    tries += 1  # peer is blocked: these polls are misses
                comm.send(None, 1, tag=2)  # give up polling; unblock peer
                return float(req.wait())
            comm.recv(0, tag=2)
            comm.send(np.float32(9.0), 0, tag=1)
            return None

        assert run_spmd(2, prog, runner=runner)[0] == 9.0


class TestReceiverSide:
    def test_received_arrays_are_readonly_coop(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(8, dtype=np.float32), dest=1)
                return None
            got = comm.recv(0)
            return bool(got.flags.writeable)

        assert run_spmd(2, prog, runner="coop")[1] is False

    def test_receiver_mutation_needs_copy_coop(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(8, dtype=np.float32), dest=1)
                return None
            got = comm.recv(0)
            with pytest.raises(ValueError):
                got += 1.0
            out = got.copy()  # the documented escape hatch
            out += 1.0
            return out

        res = run_spmd(2, prog, runner="coop")
        np.testing.assert_array_equal(res[1], np.full(8, 2.0, np.float32))


class TestZeroCopyProperty:
    @settings(max_examples=15, deadline=None)
    @given(size=st.integers(1, 512), seed=st.integers(0, 2**16),
           wait_first=st.booleans())
    def test_receiver_never_sees_post_wait_mutation(self, size, seed,
                                                    wait_first):
        """Property: whatever a sender does to its buffer after the send
        request completes, every receiver observes the original values —
        under both runners, with identical received bits."""
        rng = np.random.default_rng(seed)
        original = rng.normal(size=size).astype(np.float32)

        def prog(comm):
            if comm.rank == 0:
                buf = original.copy()
                reqs = [comm.isend(buf, dest=d, tag=3)
                        for d in range(1, comm.size)]
                if wait_first:
                    for r in reqs:
                        r.wait()
                    buf[:] = np.inf  # legal mutation after completion
                    return None
                # exercise the delivery-releases-the-loan path: block on a
                # reply first so peers consume the message, then mutate
                acks = [comm.recv(d, tag=4) for d in range(1, comm.size)]
                for r in reqs:
                    r.wait()
                buf[:] = np.inf
                return acks
            got = comm.recv(0, tag=3).copy()
            comm.send(1, dest=0, tag=4)
            return got

        outs = {}
        for runner in RUNNERS:
            res = run_spmd(3, prog, runner=runner)
            for r in (1, 2):
                np.testing.assert_array_equal(res[r], original)
            outs[runner] = res
        np.testing.assert_array_equal(outs["coop"][1], outs["threads"][1])


class TestObjectCollectiveZeroCopy:
    """PR-5 audit of the object-payload collectives: immutable (read-only)
    array payloads travel zero-copy through blocking sends — under both
    the fused and the per-message coop path — while writable payloads are
    still snapshotted (the eager reuse contract)."""

    @pytest.mark.parametrize("fused", [True, False])
    def test_readonly_bcast_payload_shares_memory(self, fused):
        frozen = np.arange(64, dtype=np.float32)
        frozen.setflags(write=False)

        def prog(comm):
            got = collectives.bcast(comm, frozen if comm.rank == 0
                                    else None, root=0)
            return np.shares_memory(got, frozen)

        res = run_spmd(3, prog, runner="coop", fused=fused)
        assert all(res.results), "read-only bcast payload was deep-copied"

    @pytest.mark.parametrize("fused", [True, False])
    def test_writable_bcast_payload_is_copied(self, fused):
        buf = np.arange(64, dtype=np.float32)

        def prog(comm):
            got = collectives.bcast(comm, buf if comm.rank == 0 else None,
                                    root=0)
            if comm.rank == 0:
                return True
            return not np.shares_memory(got, buf)

        res = run_spmd(3, prog, runner="coop", fused=fused)
        assert all(res.results), "writable bcast payload leaked zero-copy"

    @pytest.mark.parametrize("fused", [True, False])
    def test_readonly_gather_payload_shares_memory(self, fused):
        def prog(comm):
            mine = np.full(8, comm.rank, dtype=np.float32)
            mine.setflags(write=False)
            out = collectives.gather(comm, mine, root=0)
            if comm.rank != 0:
                return True
            # root's list entries alias the senders' read-only buffers
            return all(not got.flags.writeable for got in out)

        res = run_spmd(3, prog, runner="coop", fused=fused)
        assert all(res.results)

    def test_readonly_view_of_writable_base_is_copied(self):
        """A read-only *view* does not immortalize its buffer: the owner
        can still mutate, so send() must snapshot (the receiver sees
        post-time data under both runners)."""
        def prog(comm):
            if comm.rank == 0:
                owner = np.arange(8, dtype=np.float32)
                v = owner.view()
                v.setflags(write=False)
                comm.send(v, 1, tag=5)
                owner += 100.0           # legal: send() is eager
                comm.recv(1, tag=6)
                return None
            got = comm.recv(0, tag=5).copy()
            comm.send(None, 0, tag=6)
            return got

        for runner in RUNNERS:
            res = run_spmd(2, prog, runner=runner)
            np.testing.assert_array_equal(
                res[1], np.arange(8, dtype=np.float32))

    def test_frombuffer_array_payloads_work(self):
        """Arrays backed by non-array buffers (bytes via np.frombuffer)
        must not crash the snapshot base-walk — send and isend."""
        raw = np.arange(6, dtype=np.float32).tobytes()

        def prog(comm):
            arr = np.frombuffer(raw, dtype=np.float32)  # read-only,
            if comm.rank == 0:                          # base is bytes
                comm.send(arr, 1, tag=1)
                comm.isend(arr, 1, tag=2).wait()
                return None
            a = comm.recv(0, tag=1)
            b = comm.recv(0, tag=2)
            return np.array_equal(a, arr) and np.array_equal(b, arr)

        for runner in RUNNERS:
            assert run_spmd(2, prog, runner=runner)[1]

    def test_send_readonly_array_is_zero_copy(self):
        frozen = np.arange(32, dtype=np.float32)
        frozen.setflags(write=False)

        def prog(comm):
            if comm.rank == 0:
                comm.send(frozen, 1, tag=9)
                return True
            got = comm.recv(0, tag=9)
            return np.shares_memory(got, frozen)

        assert all(run_spmd(2, prog, runner="coop").results)

    def test_loaned_buffer_is_still_copied_by_send(self):
        """A buffer that is read-only only because it is on loan to an
        in-flight isend must NOT travel zero-copy through send(): the
        owner becomes writable again when the loan ends."""
        def prog(comm):
            if comm.rank == 0:
                buf = np.arange(16, dtype=np.float32)
                req = comm.isend(buf, 1, tag=1)      # loan: buf read-only
                assert not buf.flags.writeable
                comm.send(buf, 1, tag=2)             # must snapshot
                comm.recv(1, tag=3)                  # peer consumed both
                req.wait()
                buf += 100.0                          # legal after wait
                return None
            first = comm.recv(0, tag=1).copy()
            second = comm.recv(0, tag=2)
            comm.send(1, 0, tag=3)
            return first, second.copy()

        res = run_spmd(2, prog, runner="coop")
        first, second = res[1]
        np.testing.assert_array_equal(first, np.arange(16, dtype=np.float32))
        np.testing.assert_array_equal(second, np.arange(16,
                                                        dtype=np.float32))


class TestAlgorithmsUnderZeroCopy:
    def test_schemes_match_dense_reference(self):
        """End-to-end guard: every scheme still reduces correctly when all
        payloads are views (catches receiver-side mutation regressions)."""
        from repro.allreduce import make_allreduce

        def prog(comm, scheme):
            algo = make_allreduce(
                scheme, **({} if scheme in ("dense", "dense_ovlp")
                           else {"density": 0.1}))
            rng = np.random.default_rng(comm.rank)
            acc = rng.normal(size=512).astype(np.float32)
            res = algo.reduce(comm, acc, 1)
            upd = res.update
            return upd if isinstance(upd, np.ndarray) else upd.to_dense()

        for scheme in ("dense", "dense_ovlp", "topka", "topkdsa", "gtopk",
                       "gaussiank", "oktopk"):
            res = run_spmd(4, prog, scheme, runner="coop")
            for out in res.results:
                assert np.isfinite(out).all(), scheme


class TestDeadlockDetection:
    def test_global_deadlock_is_detected(self):
        """The cooperative runner proves the deadlock and raises instead of
        hanging (the threaded runner would block forever here)."""
        def prog(comm):
            # everyone receives from a tag nobody ever sends
            return comm.recv((comm.rank + 1) % comm.size, tag=999)

        with pytest.raises(RankFailedError, match="can never match"):
            run_spmd(3, prog, runner="coop")

    def test_partial_progress_then_deadlock(self):
        def prog(comm):
            other = 1 - comm.rank
            comm.send(np.ones(4, dtype=np.float32), other, tag=1)
            comm.recv(other, tag=1)
            comm.recv(other, tag=2)  # never sent

        with pytest.raises(RankFailedError, match="waiting on"):
            run_spmd(2, prog, runner="coop")
