"""Abort and deadlock semantics across both runners.

Satellite coverage for ``Network.abort()``: when one rank fails, every
blocked primitive — blocking receive, ``waitall`` (batched delivery), and
the fused-collective rendezvous — must wake promptly, raise ``CommError``,
and never hand over partial data.  Plus diagnosability of
``DeadlockError`` (structured ``blocked`` report: parked ranks, the
operation each is blocked on, per-rank simulated clocks).
"""

import numpy as np
import pytest

from repro.comm import Network, collectives, run_spmd
from repro.errors import CommError, DeadlockError, RankFailedError

RUNNERS = ("coop", "threads")


class TestAbortWakesBlockedPrimitives:
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_blocking_recv_wakes_and_raises(self, runner):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(1e-6)
                raise RuntimeError("boom")
            try:
                comm.recv(source=0, tag=7)
            except CommError:
                return "woken"
            return "got data"

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, runner=runner)
        assert isinstance(ei.value.failures[0], RuntimeError)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_waitall_wakes_without_partial_data(self, runner):
        """A waitall over several irecvs interrupted by a peer failure
        must leave every request incomplete — no partial delivery."""
        def prog(comm):
            if comm.rank == 0:
                # satisfy one of rank 1's receives, then die before the
                # second: rank 1 must not observe the first as delivered
                comm.send(np.arange(4, dtype=np.float32), dest=1, tag=1)
                raise RuntimeError("boom")
            if comm.rank == 1:
                reqs = [comm.irecv(source=0, tag=1),
                        comm.irecv(source=0, tag=2)]
                try:
                    comm.waitall(reqs)
                except CommError:
                    return [r.completed for r in reqs]
                return "delivered"
            return None

        with pytest.raises(RankFailedError) as ei:
            run_spmd(3, prog, runner=runner)
        assert isinstance(ei.value.failures[0], RuntimeError)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_batched_sends_to_failed_rank_do_not_block(self, runner):
        def prog(comm):
            if comm.rank == 0:
                comm.compute(1e-6)
                raise RuntimeError("boom")
            reqs = comm.isend_batch(
                [(np.zeros(16, np.float32), 0, t) for t in range(4)])
            try:
                for r in reqs:
                    r.wait()
                comm.recv(source=0, tag=99)
            except CommError:
                return "woken"
            return "finished"

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner=runner)
        assert isinstance(ei.value.failures[0], RuntimeError)

    def test_fused_rendezvous_wakes_on_abort(self):
        """Ranks parked at the fused-collective rendezvous must be woken
        by a peer's failure (cooperative engine)."""
        def prog(comm):
            x = np.ones(64, dtype=np.float32)
            if comm.rank == 0:
                comm.recv(source=1, tag=5)   # wait until 1 is parked
                raise RuntimeError("boom")
            if comm.rank == 1:
                comm.send(1.0, dest=0, tag=5)
            try:
                collectives.allreduce(comm, x)
            except CommError:
                return "woken"
            return "finished"

        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, runner="coop", fused=True)
        assert isinstance(ei.value.failures[0], RuntimeError)

    @pytest.mark.parametrize("runner", RUNNERS)
    def test_abort_exc_is_reported_not_secondary(self, runner):
        """Only the genuine origin appears in failures; the unblocked
        peers' secondary CommErrors are suppressed."""
        def prog(comm):
            if comm.rank == 2:
                comm.compute(1e-6)
                raise ValueError("the real bug")
            comm.recv(source=2, tag=3)

        with pytest.raises(RankFailedError) as ei:
            run_spmd(4, prog, runner=runner)
        assert set(ei.value.failed_ranks) == {2}
        assert "the real bug" in str(ei.value)

    def test_network_abort_is_idempotent_and_sticky(self):
        net = Network(2)
        net.abort(RuntimeError("first"))
        net.abort(RuntimeError("second"))
        assert net.aborted
        with pytest.raises(CommError, match="first"):
            net._check_abort()


class TestDeadlockDiagnosability:
    def test_blocked_report_names_ranks_ops_and_clocks(self):
        def prog(comm):
            comm.compute(1e-6 * (comm.rank + 1))
            # 0 waits on 1 (never sent), 1 waits on 0 with the wrong tag
            comm.recv(source=1 - comm.rank, tag=10 + comm.rank)

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner="coop")
        # the wrapped/original DeadlockError carries the structured report
        msg = str(ei.value)
        assert "waiting on" in msg and "can never match" in msg
        assert "recv(source=1, tag=10)" in msg
        assert "recv(source=0, tag=11)" in msg
        assert "t=" in msg  # per-rank simulated clocks in the message

    def test_deadlock_error_blocked_structure(self):
        """The DeadlockError aborting the section carries a structured
        ``blocked`` report (one entry per parked rank)."""
        holder = {}

        def prog(comm):
            holder["net"] = comm.net
            comm.recv(source=(comm.rank + 1) % 2, tag=42 + comm.rank)

        with pytest.raises(RankFailedError):
            run_spmd(2, prog, runner="coop")
        exc = holder["net"]._abort_exc
        assert isinstance(exc, DeadlockError)
        assert len(exc.blocked) == 2
        for entry in sorted(exc.blocked, key=lambda d: d["rank"]):
            assert entry["op"] == "recv"
            assert entry["source"] == (entry["rank"] + 1) % 2
            assert entry["tag"] == 42 + entry["rank"]
            assert entry["clock"] >= 0.0

    def test_rendezvous_deadlock_reports_collective_sig(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_MIN_RANKS", "0")

        def prog(comm):
            if comm.rank == 0:
                return "left early"
            try:
                collectives.allreduce(comm, np.ones(8, np.float32))
            except CommError as e:
                raise e

        with pytest.raises(RankFailedError) as ei:
            run_spmd(2, prog, runner="coop", fused=True)
        assert "rendezvous" in str(ei.value)

    def test_survivors_shrink_after_revoke(self):
        """After a revoke, survivors blocked on the dead rank detect the
        failure and can shrink to a working 2-rank world."""
        def prog(comm):
            if comm.rank == 0:
                comm.net.revoke(0)
                return "dead"
            try:
                comm.recv(source=0, tag=1)
            except RankFailedError as e:
                assert e.failed_ranks == (0,)
                sub = comm.shrink()
                return ("shrunk", sub.size)

        res = run_spmd(3, prog, runner="coop")
        assert res.results[0] == "dead"
        assert res.results[1] == ("shrunk", 2)
        assert res.results[2] == ("shrunk", 2)
