"""Metrics (WER, accuracy) and run records."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.train import (
    IterationRecord,
    RunRecord,
    collapse_repeats,
    edit_distance,
    top1_accuracy,
    word_error_rate,
)


class TestTop1Accuracy:
    def test_perfect(self):
        logits = np.eye(4)
        assert top1_accuracy(logits, np.arange(4)) == 1.0

    def test_chance(self):
        logits = np.zeros((4, 2))
        logits[:, 0] = 1.0
        assert top1_accuracy(logits, np.array([0, 0, 1, 1])) == 0.5

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            top1_accuracy(np.zeros(3), np.zeros(3))


class TestEditDistance:
    def test_known_cases(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0
        assert edit_distance([1, 2, 3], [1, 3]) == 1       # deletion
        assert edit_distance([1, 3], [1, 2, 3]) == 1       # insertion
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1    # substitution
        assert edit_distance([], [1, 2]) == 2
        assert edit_distance([1, 2], []) == 2

    @given(st.lists(st.integers(0, 5), max_size=12),
           st.lists(st.integers(0, 5), max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_metric_properties(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)                  # symmetry
        assert (d == 0) == (a == b)                      # identity
        assert d <= max(len(a), len(b))                  # upper bound
        assert d >= abs(len(a) - len(b))                 # lower bound

    @given(st.lists(st.integers(0, 3), max_size=8),
           st.lists(st.integers(0, 3), max_size=8),
           st.lists(st.integers(0, 3), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert (edit_distance(a, c)
                <= edit_distance(a, b) + edit_distance(b, c))


class TestWER:
    def test_exact_match_zero(self):
        assert word_error_rate([[1, 2]], [[1, 2]]) == 0.0

    def test_simple_rate(self):
        assert word_error_rate([[1, 9, 3]], [[1, 2, 3]]) == pytest.approx(1 / 3)

    def test_corpus_level_weighting(self):
        wer = word_error_rate([[1], [1, 2, 3, 9]], [[2], [1, 2, 3, 4]])
        assert wer == pytest.approx(2 / 5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            word_error_rate([[1]], [[1], [2]])

    def test_collapse_repeats(self):
        assert collapse_repeats([1, 1, 2, 2, 2, 1]) == [1, 2, 1]
        assert collapse_repeats([]) == []


def _rec(t, loss, it_time=0.1, **kw):
    return IterationRecord(t=t, loss=loss, lr=0.1, compute_time=0.05,
                           sparsify_time=0.01, comm_time=0.04,
                           iteration_time=it_time, **kw)


class TestRunRecord:
    def test_cumulative_times(self):
        rr = RunRecord("oktopk", 4)
        for t in range(1, 4):
            rr.append(_rec(t, 1.0 / t))
        np.testing.assert_allclose(rr.times, [0.1, 0.2, 0.3])
        assert rr.total_time == pytest.approx(0.3)

    def test_mean_breakdown_sums_to_total(self):
        rr = RunRecord("oktopk", 4)
        for t in range(1, 5):
            rr.append(_rec(t, 1.0))
        bd = rr.mean_breakdown()
        assert bd["total"] == pytest.approx(
            bd["sparsification"] + bd["communication"]
            + bd["computation+io"])

    def test_breakdown_skip(self):
        rr = RunRecord("x", 1)
        rr.append(_rec(1, 1.0, it_time=100.0))
        rr.append(_rec(2, 1.0, it_time=0.1))
        assert rr.mean_breakdown(skip=1)["total"] == pytest.approx(0.1)

    def test_eval_curve_and_final(self):
        rr = RunRecord("x", 1)
        rr.append(_rec(1, 1.0))
        rr.append(_rec(2, 0.9, eval_metrics={"acc": 0.5}))
        rr.append(_rec(3, 0.8, eval_metrics={"acc": 0.7}))
        assert rr.final_eval() == {"acc": 0.7}
        curve = rr.eval_curve("acc")
        assert curve == [(pytest.approx(0.2), 0.5),
                         (pytest.approx(0.3), 0.7)]

    def test_final_eval_none_when_never_evaluated(self):
        rr = RunRecord("x", 1)
        rr.append(_rec(1, 1.0))
        assert rr.final_eval() is None

    def test_to_dict_json_serializable(self):
        rr = RunRecord("oktopk", 2)
        rr.append(_rec(1, 1.5, xi=0.3, selected=10))
        payload = json.dumps(rr.to_dict())
        back = json.loads(payload)
        assert back["scheme"] == "oktopk"
        assert back["records"][0]["xi"] == 0.3

    def test_to_csv_roundtrip(self, tmp_path):
        rr = RunRecord("oktopk", 2)
        rr.append(_rec(1, 1.5, selected=10, xi=0.3))
        rr.append(_rec(2, 1.2))
        path = tmp_path / "curve.csv"
        rr.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[0].startswith("t,cum_time,loss")
        assert "1.5" in lines[1]
