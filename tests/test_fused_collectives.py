"""Fused collective fast path: schedule-compiler properties and the
three-way bit-identity oracle (fused-coop == per-message-coop == threads).

The fused path (``repro.comm.fused``) must be *indistinguishable* from the
per-message reference in everything the simulator observes: results,
per-rank traffic counters, link occupancy and simulated clocks/makespans —
for every collective, power-of-two and non-power-of-two P, object and
array payloads, the schemes built on top, and fused collectives issued
inside ``async_region`` under stream-mode contention.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.allreduce import ParamLayout, make_allreduce
from repro.allreduce.session import run_session
from repro.comm import NetworkModel, collectives as coll, fusion_enabled, \
    run_spmd
from repro.comm import fused as fused_mod
from repro.errors import RankFailedError

PS = [2, 3, 4, 5, 8]


@pytest.fixture(autouse=True)
def _fusion_floors_off(monkeypatch):
    """Pin the profitability floors to zero so every P in ``PS`` exercises
    the fused path (the default floors route P <= 3 to the per-message
    path for wall-clock reasons — semantics coverage must not shrink)."""
    monkeypatch.setenv(fused_mod.FUSED_MIN_RANKS_ENV, "0")
    monkeypatch.setenv(fused_mod.FUSED_MIN_WPR_ENV, "0")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def net_state(res):
    net = res.network
    return (list(net.clocks), list(net.egress_free),
            list(net.ingress_free), list(net.words_sent),
            list(net.words_recv), list(net.msgs_sent),
            list(net.msgs_recv))


def assert_same(a, b, path=""):
    if isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray), path
        assert a.dtype == b.dtype and a.shape == b.shape, path
        assert a.tobytes() == b.tobytes(), f"value bits differ at {path}"
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            assert_same(x, y, f"{path}[{i}]")
    elif hasattr(a, "indices") and hasattr(a, "values"):  # COOVector
        assert_same(a.indices, b.indices, f"{path}.indices")
        assert_same(a.values, b.values, f"{path}.values")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def three_way(prog, p, *args, model=None):
    """Run under fused coop / reference coop / threads; assert identical
    network state; return the three results for result comparison."""
    a = run_spmd(p, prog, *args, runner="coop", fused=True, model=model)
    b = run_spmd(p, prog, *args, runner="coop", fused=False, model=model)
    c = run_spmd(p, prog, *args, runner="threads", model=model)
    sa = net_state(a)
    assert sa == net_state(b), f"fused vs reference state differs (P={p})"
    assert sa == net_state(c), f"fused vs threads state differs (P={p})"
    assert_same(list(a.results), list(b.results), f"P={p} ref")
    assert_same(list(a.results), list(c.results), f"P={p} threads")
    return a


# ---------------------------------------------------------------------------
# Schedule compiler properties: the compiled message schedule matches the
# executed per-message collective (message multiset and volumes, via the
# reference path's trace)
# ---------------------------------------------------------------------------
def _traced_messages(prog, p, *args):
    """Messages (src, dst, nwords, tag) of the per-message reference run
    (tracing disables fusion automatically)."""
    res = run_spmd(p, prog, *args, runner="coop", trace=True)
    return Counter((t.src, t.dst, t.nwords, t.tag)
                   for t in res.network.trace)


class TestScheduleCompiler:
    @pytest.mark.parametrize("p", PS + [16])
    @pytest.mark.parametrize("algo,n,wpe", [
        ("recursive_doubling", 129, 1),
        ("recursive_doubling", 7, 2),
        ("rabenseifner", 257, 1),
        ("rabenseifner", 64, 1),
    ])
    def test_allreduce_schedule_matches_trace(self, p, algo, n, wpe):
        dtype = np.float32 if wpe == 1 else np.float64

        def prog(comm):
            arr = np.arange(n, dtype=dtype) + comm.rank
            table = {"recursive_doubling": coll.allreduce_recursive_doubling,
                     "rabenseifner": coll.allreduce_rabenseifner}
            table[algo](comm, arr)

        sched = fused_mod.compile_allreduce(p, n, wpe, algo)
        assert Counter(sched.messages()) == _traced_messages(prog, p)

    @pytest.mark.parametrize("p", PS + [16])
    def test_ring_schedules_match_trace(self, p):
        n = 101

        def prog(comm):
            coll.allreduce_ring(comm, np.arange(n, dtype=np.float32))

        rs = fused_mod.compile_reduce_scatter_ring(p, n, 1)
        ag = fused_mod.compile_allgather_ring(p, n, 1)
        assert (Counter(rs.messages()) + Counter(ag.messages())
                == _traced_messages(prog, p))

    @pytest.mark.parametrize("p", PS + [16])
    def test_allgatherv_schedule_matches_trace(self, p):
        def prog(comm):
            coll.allgatherv(comm, np.arange(comm.rank + 2,
                                            dtype=np.float32))

        sizes = tuple(r + 2 for r in range(p))
        sched = fused_mod.compile_allgatherv(p, sizes)
        assert Counter(sched.messages()) == _traced_messages(prog, p)

    @pytest.mark.parametrize("p", PS)
    def test_small_collective_schedules_match_trace(self, p):
        root = p - 1

        def prog(comm):
            coll.barrier(comm)
            coll.bcast(comm, np.arange(5, dtype=np.float32), root=root)
            coll.reduce(comm, np.arange(4, dtype=np.float32), root=root)
            coll.gather(comm, np.arange(3, dtype=np.float32), root=root)
            coll.scatter(comm,
                         [np.arange(2, dtype=np.float32)] * comm.size
                         if comm.rank == root else None, root=root)
            coll.alltoallv(comm, [np.arange(j + 1, dtype=np.float32)
                                  for j in range(comm.size)])

        expect = Counter()
        expect += Counter(fused_mod.compile_barrier(p).messages())
        expect += Counter(fused_mod.compile_bcast(p, root, 5).messages())
        expect += Counter(fused_mod.compile_reduce(p, root, 4, 1).messages())
        expect += Counter(
            fused_mod.compile_gather(p, root, (3,) * p).messages())
        expect += Counter(
            fused_mod.compile_scatter(p, root, (2,) * p).messages())
        rows = tuple(tuple(j + 1 for j in range(p)) for _ in range(p))
        expect += Counter(fused_mod.compile_alltoallv(p, rows).messages())
        assert expect == _traced_messages(prog, p)

    @pytest.mark.parametrize("p", PS + [16])
    def test_schedule_totals_are_symmetric(self, p):
        """Every compiled message is delivered: per-rank totals add up."""
        for sched in (fused_mod.compile_allreduce(p, 33, 1, "rabenseifner"),
                      fused_mod.compile_allgatherv(p, tuple(range(1, p + 1))),
                      fused_mod.compile_barrier(p)):
            assert sum(sched.words_sent) == sum(sched.words_recv)
            assert sum(sched.msgs_sent) == sum(sched.msgs_recv)
            assert sum(sched.msgs_sent) == sched.nmsgs


# ---------------------------------------------------------------------------
# Three-way bit identity: every collective, staggered clocks, pending
# point-to-point traffic, object payloads, both payload word sizes
# ---------------------------------------------------------------------------
def _collective_torture(comm):
    p, r = comm.size, comm.rank
    rng = np.random.default_rng(1000 + r)
    comm.compute(r * 3.7e-7)                     # staggered clocks
    req = comm.isend(np.float32([r]), (r + 1) % p, tag=7)  # pending p2p
    root = p - 1
    x = rng.standard_normal(211).astype(np.float32)
    out = [
        coll.allreduce(comm, x, algo="rabenseifner"),
        coll.allreduce(comm, x, algo="recursive_doubling"),
        coll.allreduce(comm, x, algo="ring"),
        coll.allreduce_recursive_doubling(
            comm, np.linspace(0.0, 1.0, p + 1)),     # float64, wpe=2
        coll.bcast(comm, x if r == root else None, root=root),
        coll.reduce(comm, x, root=0),
        coll.allgatherv(comm, x[:r + 1]),
        coll.allgather_object(comm, (r, "tag")),
        coll.alltoallv(comm, [x[j:j + 2] for j in range(p)]),
        coll.gather(comm, x[:4], root=root),
        coll.scatter(comm, [x[j:j + 3] for j in range(p)]
                     if r == 0 else None, root=0),
    ]
    coll.barrier(comm)
    got = comm.recv((r - 1) % p, tag=7)          # drain the pending p2p
    req.wait()
    return out, got, comm.clock


class TestThreeWayBitIdentity:
    @pytest.mark.parametrize("p", PS + [16])
    def test_collectives(self, p):
        three_way(_collective_torture, p)

    @pytest.mark.parametrize("p", [3, 4])
    def test_collectives_with_overheads(self, p):
        model = NetworkModel(o_inject=3e-8, o_send=1e-8)
        three_way(_collective_torture, p, model=model)

    @pytest.mark.parametrize("p", PS)
    @pytest.mark.parametrize("scheme,kwargs", [
        ("dense", {}),
        ("dense_ovlp", {"nbuckets": 3}),
        ("gtopk", {"k": 40}),
        ("topka", {"k": 40}),
        ("gaussiank", {"k": 40}),
        ("topkdsa", {"k": 40}),
        ("oktopk", {"k": 40, "tau": 2, "tau_prime": 2}),
        ("oktopk", {"k": 40, "rotation": False, "bucket_size": 2}),
    ])
    def test_schemes(self, p, scheme, kwargs):
        def prog(comm):
            rng = np.random.default_rng(7 + comm.rank)
            sch = make_allreduce(scheme, **kwargs)
            outs = []
            for t in range(1, 4):
                acc = rng.standard_normal(541).astype(np.float32)
                res = sch.reduce(comm, acc, t)
                upd = res.update
                outs.append((upd.indices.copy(), upd.values.copy())
                            if hasattr(upd, "indices") else upd)
                outs.append(comm.clock)
            return outs

        three_way(prog, p)

    @pytest.mark.parametrize("p", [4, 5])
    def test_stream_mode_contention(self, p):
        """Fused collectives issued inside ``async_region`` keep
        contending with in-flight bucket traffic: the streamed multi-
        bucket session is three-way bit-identical."""
        layout = ParamLayout.from_sizes([96, 64, 48, 32])

        def prog(comm):
            rng = np.random.default_rng(3 + comm.rank)
            sch = make_allreduce("oktopk", k=30, tau=2, tau_prime=2)
            outs = []
            for t in range(1, 4):
                acc = rng.standard_normal(layout.n).astype(np.float32)

                def pacer(seg, _c=comm):
                    _c.compute(2e-6)

                res = run_session(sch, comm, layout, t, acc,
                                  bucket_size=64, pacer=pacer)
                outs.append((res.update.indices.copy(),
                             res.update.values.copy(), comm.clock))
            return outs

        three_way(prog, p)

    def test_trace_falls_back_to_reference(self):
        """Tracing needs per-message records: fusion must disengage."""
        def prog(comm):
            coll.allreduce(comm, np.ones(16, dtype=np.float32))

        res = run_spmd(4, prog, runner="coop", trace=True)
        assert len(res.network.trace) > 0

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED", "0")
        assert not fusion_enabled()
        monkeypatch.setenv("REPRO_FUSED", "1")
        assert fusion_enabled()
        monkeypatch.delenv("REPRO_FUSED")
        assert fusion_enabled()


# ---------------------------------------------------------------------------
# Profitability floors (words/P + world-size gate)
# ---------------------------------------------------------------------------
class TestFusionFloors:
    def _prog(self, comm):
        coll.allreduce(comm, np.ones(256, dtype=np.float32),
                       algo="recursive_doubling")

    def test_floor_defaults_and_env_parsing(self, monkeypatch):
        monkeypatch.delenv(fused_mod.FUSED_MIN_RANKS_ENV, raising=False)
        monkeypatch.delenv(fused_mod.FUSED_MIN_WPR_ENV, raising=False)
        assert fused_mod.fusion_floors() == (4, 0)
        monkeypatch.setenv(fused_mod.FUSED_MIN_RANKS_ENV, "2")
        monkeypatch.setenv(fused_mod.FUSED_MIN_WPR_ENV, "64")
        assert fused_mod.fusion_floors() == (2, 64)
        monkeypatch.setenv(fused_mod.FUSED_MIN_WPR_ENV, "not-a-number")
        assert fused_mod.fusion_floors() == (2, 0)

    def test_small_world_skip_records_provenance(self, monkeypatch):
        monkeypatch.delenv(fused_mod.FUSED_MIN_RANKS_ENV, raising=False)
        monkeypatch.delenv(fused_mod.FUSED_MIN_WPR_ENV, raising=False)
        res = run_spmd(3, self._prog, runner="coop", fused=True)
        log = res.network.algorithm_log
        assert log[("allreduce", "recursive_doubling", "unfused-small")] \
            == {"calls": 1, "words": 256}
        # the reference path ran and recorded its own entry
        assert ("allreduce", "recursive_doubling", "forced") in log
        # above both floors nothing is skipped
        res = run_spmd(4, self._prog, runner="coop", fused=True)
        assert not any(mode == "unfused-small"
                       for _, _, mode in res.network.algorithm_log)

    def test_words_per_rank_floor(self, monkeypatch):
        monkeypatch.setenv(fused_mod.FUSED_MIN_WPR_ENV, "128")
        res = run_spmd(4, self._prog, runner="coop", fused=True)  # w/P=64
        assert ("allreduce", "recursive_doubling",
                "unfused-small") in res.network.algorithm_log
        monkeypatch.setenv(fused_mod.FUSED_MIN_WPR_ENV, "64")
        res = run_spmd(4, self._prog, runner="coop", fused=True)
        assert ("allreduce", "recursive_doubling",
                "unfused-small") not in res.network.algorithm_log

    def test_ring_decomposition_skip_records_both_phases(self, monkeypatch):
        monkeypatch.delenv(fused_mod.FUSED_MIN_RANKS_ENV, raising=False)
        monkeypatch.delenv(fused_mod.FUSED_MIN_WPR_ENV, raising=False)

        def prog(comm):
            coll.allreduce(comm, np.ones(256, dtype=np.float32),
                           algo="ring")

        log = run_spmd(3, prog, runner="coop",
                       fused=True).network.algorithm_log
        assert ("reduce_scatter_ring", "ring", "unfused-small") in log
        assert ("allgather_ring", "ring", "unfused-small") in log

    def test_skipped_run_stays_bit_identical(self, monkeypatch):
        """With the default floors tripping (P=2), fused=True must land on
        exactly the reference execution."""
        monkeypatch.delenv(fused_mod.FUSED_MIN_RANKS_ENV, raising=False)
        monkeypatch.delenv(fused_mod.FUSED_MIN_WPR_ENV, raising=False)
        three_way(_collective_torture, 2)


# ---------------------------------------------------------------------------
# Rendezvous semantics
# ---------------------------------------------------------------------------
class TestRendezvous:
    def test_mismatched_collectives_abort(self):
        def prog(comm):
            x = np.ones(8, dtype=np.float32)
            if comm.rank == 0:
                return coll.allreduce(comm, x, algo="rabenseifner")
            return coll.allreduce(comm, x, algo="recursive_doubling")

        with pytest.raises(RankFailedError, match="mismatch"):
            run_spmd(4, prog, runner="coop", fused=True)

    def test_missing_rank_is_deadlock(self):
        """A rank that never reaches the rendezvous deadlocks the rest —
        detected, not hung."""
        def prog(comm):
            if comm.rank == 0:
                return None
            return coll.allreduce(comm, np.ones(4, dtype=np.float32))

        with pytest.raises(RankFailedError, match="rendezvous"):
            run_spmd(3, prog, runner="coop", fused=True)

    def test_mixed_blocked_recv_and_rendezvous_deadlock(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=12345)   # never sent
            return coll.allreduce(comm, np.ones(4, dtype=np.float32))

        with pytest.raises(RankFailedError, match="can never match"):
            run_spmd(3, prog, runner="coop", fused=True)

    def test_failing_rank_unblocks_rendezvous(self):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            return coll.allreduce(comm, np.ones(4, dtype=np.float32))

        with pytest.raises(RankFailedError, match="boom"):
            run_spmd(3, prog, runner="coop", fused=True)
