"""Runtime sanitizer mode (``REPRO_SANITIZE=1`` / ``run_spmd(sanitize=True)``).

Covers the three detectors (loan-window writes, mailbox leaks, the
schedule-perturbation race detector), the transparency contract (the
sanitizer observes, it never changes results), and the env/argument
switch resolution.  All simulated time — everything here runs in
milliseconds of wall clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import SANITIZE_ENV, collectives, run_spmd, sanitize_enabled
from repro.errors import (
    LoanViolationError,
    MailboxLeakError,
    SanitizerError,
    ScheduleRaceError,
)

pytestmark = pytest.mark.analysis

P = 4


# ---------------------------------------------------------------------------
# rank programs
# ---------------------------------------------------------------------------
def _allreduce_prog(comm):
    rng = np.random.default_rng(77 + comm.rank)
    x = rng.standard_normal(256).astype(np.float32)
    return collectives.allreduce(comm, x).copy()


def _loan_violator(comm):
    buf = np.full(64, float(comm.rank), dtype=np.float32)
    if comm.rank == 0:
        req = comm.isend(buf, 1)
        buf.setflags(write=True)  # bypass the isend write-lock
        buf[0] = 999.0
        req.wait()
    elif comm.rank == 1:
        comm.recv(0)


def _leaky_prog(comm):
    # send() is eager: the message is posted to rank 1's mailbox, but
    # rank 1 never receives it.
    if comm.rank == 0:
        comm.send(np.arange(8, dtype=np.float32), 1, tag=7)


def _make_racy_prog():
    order: list = []

    def racy(comm):
        # Communicates through shared Python state: the returned value
        # depends on which rank the engine schedules first.
        order.append(comm.rank)
        comm.send(np.arange(4, dtype=np.float32), (comm.rank + 1) % comm.size)
        comm.recv((comm.rank - 1) % comm.size)
        return list(order)

    return racy


def _writer_recv_prog(comm):
    if comm.rank == 0:
        comm.send(np.arange(16, dtype=np.float32), 1)
        return None
    got = comm.recv(0)
    got[0] = -1.0  # received buffers are owned by the runtime
    return got[0]


# ---------------------------------------------------------------------------
# switch resolution
# ---------------------------------------------------------------------------
class TestSwitch:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert sanitize_enabled() is False

    @pytest.mark.parametrize("val", ["1", "true", "YES", "On"])
    def test_env_truthy(self, monkeypatch, val):
        monkeypatch.setenv(SANITIZE_ENV, val)
        assert sanitize_enabled() is True

    @pytest.mark.parametrize("val", ["0", "", "no", "off", "false"])
    def test_env_falsy(self, monkeypatch, val):
        monkeypatch.setenv(SANITIZE_ENV, val)
        assert sanitize_enabled() is False

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_enabled(False) is False
        monkeypatch.delenv(SANITIZE_ENV)
        assert sanitize_enabled(True) is True

    def test_env_enables_run_spmd(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "1")
        with pytest.raises(LoanViolationError):
            run_spmd(2, _loan_violator)


# ---------------------------------------------------------------------------
# loan-window write detection
# ---------------------------------------------------------------------------
class TestLoanSanitizer:
    def test_setflags_bypass_flagged(self):
        with pytest.raises(LoanViolationError) as exc_info:
            run_spmd(2, _loan_violator, sanitize=True)
        err = exc_info.value
        assert isinstance(err, SanitizerError)
        assert err.violations
        assert "writable during its loan window" in err.violations[0]
        assert "0->1" in err.violations[0]

    def test_bypass_undetected_without_sanitizer(self):
        # The write-lock restore in release_loans hides the bypass when
        # the sanitizer is off — exactly why the sanitizer exists.
        run_spmd(2, _loan_violator)


# ---------------------------------------------------------------------------
# mailbox-leak audit
# ---------------------------------------------------------------------------
class TestMailboxAudit:
    def test_unreceived_send_flagged(self):
        with pytest.raises(MailboxLeakError) as exc_info:
            run_spmd(2, _leaky_prog, sanitize=True)
        (leak,) = exc_info.value.leaks
        assert (leak["src"], leak["dst"], leak["tag"]) == (0, 1, 7)

    def test_unreceived_send_tolerated_without_sanitizer(self):
        run_spmd(2, _leaky_prog)

    def test_clean_program_no_leak(self):
        run_spmd(P, _allreduce_prog, sanitize=True)


# ---------------------------------------------------------------------------
# schedule-perturbation race detector
# ---------------------------------------------------------------------------
class TestRaceDetector:
    @pytest.mark.parametrize("runner", ["coop", "gen"])
    def test_order_sensitive_program_flagged(self, runner):
        with pytest.raises(ScheduleRaceError) as exc_info:
            run_spmd(P, _make_racy_prog(), runner=runner, sanitize=True)
        assert exc_info.value.differences

    @pytest.mark.parametrize("runner", ["coop", "gen"])
    def test_order_sensitive_program_passes_without_sanitizer(self, runner):
        # Deterministic schedule means the race never shows up unperturbed.
        run_spmd(P, _make_racy_prog(), runner=runner)

    @pytest.mark.parametrize("runner", ["coop", "gen"])
    def test_allreduce_clean_under_perturbation(self, runner):
        res = run_spmd(P, _allreduce_prog, runner=runner, sanitize=True)
        ref = run_spmd(P, _allreduce_prog, runner=runner)
        for r in range(P):
            assert res[r].tobytes() == ref[r].tobytes()


# ---------------------------------------------------------------------------
# transparency: the sanitizer must not change outcomes
# ---------------------------------------------------------------------------
class TestTransparency:
    @pytest.mark.parametrize("runner", ["coop", "gen", "threads"])
    def test_results_and_makespan_identical(self, runner):
        base = run_spmd(P, _allreduce_prog, runner=runner)
        sane = run_spmd(P, _allreduce_prog, runner=runner, sanitize=True)
        assert sane.makespan == base.makespan
        for r in range(P):
            assert sane[r].dtype == base[r].dtype
            assert sane[r].tobytes() == base[r].tobytes()


# ---------------------------------------------------------------------------
# threads runner: received payloads become read-only under the sanitizer
# ---------------------------------------------------------------------------
class TestThreadsReadonly:
    def test_recv_buffer_write_raises(self):
        # Legacy threads runner hands each receiver a private writable
        # copy, so writes are tolerated (though still bad style) ...
        run_spmd(2, _writer_recv_prog, runner="threads")
        # ... but the sanitizer freezes the copy to enforce the same
        # received-arrays-are-read-only contract the coop runner has.
        with pytest.raises(Exception) as exc_info:
            run_spmd(2, _writer_recv_prog, runner="threads", sanitize=True)
        assert "read-only" in str(exc_info.value)
