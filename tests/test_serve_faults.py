"""Fault-tolerant serving: survivable TP inference under live traffic.

The ISSUE-10 acceptance criteria, as tests:

* a P=4 serving run with a mid-run ``RankCrash`` completes — survivors
  shrink to 3, re-enqueued in-flight requests finish, goodput is positive
  on both sides of the failure — and the full report is bit-identical
  across the ``coop``/``gen``/``threads`` runners and fused/unfused
  collective paths (crash recovery is a pure function of
  ``(seed, config, plan)``);
* request-level robustness: per-request deadlines, timeout reaping,
  deterministic retry with capped exponential backoff, and deadline-aware
  admission shedding are first-class terminal states with exact
  accounting in the report;
* transparency: ``faults=None`` never consults the robustness knobs and
  the report carries no degradation section.
"""

from dataclasses import replace

import pytest

from repro.comm.faults import (ComputeStraggler, FaultPlan, LinkSlowdown,
                               RankCrash)
from repro.serve import ServeConfig, simulate_serving
from repro.serve.loop import _retry_release

SMOKE = ServeConfig(p=4, rate=2000.0, n_requests=12, prompt_tokens=32,
                    output_tokens=3, max_batch_size=4, seed=0)

RUNNERS = ("coop", "gen", "threads")


def crash_at(time, rank=1, detect_timeout=1e-4):
    return FaultPlan(crashes=[RankCrash(rank=rank, time=time)],
                     detect_timeout=detect_timeout)


def signature(rep):
    """Everything semantically comparable across runners and fused paths
    ("unfused-small" is a coop+fused-only wall-clock provenance note)."""
    algos = {k: v for k, v in rep.algorithms.items()
             if not k.endswith("/unfused-small")}
    return (rep.requests, rep.summary(), rep.steps, rep.events,
            rep.makespan, rep.checksum, algos)


class TestCrashRecovery:
    def clean(self):
        return simulate_serving(SMOKE)

    def test_crash_mid_decode_recovers(self):
        clean = self.clean()
        # crash mid-decode of a request admitted after a few others have
        # fully completed, so goodput is measurable on both sides
        done = sorted(r.token_times[-1] for r in clean.requests)
        rec = next(r for r in clean.requests
                   if len(r.token_times) >= 2 and r.token_times[0] > done[2])
        t = 0.5 * (rec.token_times[0] + rec.token_times[1])
        rep = simulate_serving(SMOKE, faults=crash_at(t))

        (ev,) = rep.events
        assert ev["event"] == "shrink"
        assert ev["failed_ranks"] == [1]
        assert (ev["old_size"], ev["new_size"]) == (4, 3)
        assert ev["requeued"]  # tokens in flight died with the old world
        s = rep.summary()
        # the re-enqueued requests finish: nothing shed, nothing timed out
        assert s["availability"] == 1.0
        assert s["completed"] == SMOKE.n_requests
        assert s["total_retries"] == len(ev["requeued"])
        assert s["recovery_time"] > 0
        # goodput on both sides of the failure
        assert s["goodput_tokens_per_s_pre"] > 0
        assert s["goodput_tokens_per_s_post"] > 0
        assert rep.generated_tokens == 3 * SMOKE.n_requests

    def test_crash_mid_prefill_recovers(self):
        rec = self.clean().requests[0]
        t = 0.5 * (rec.admitted + rec.token_times[0])
        rep = simulate_serving(SMOKE, faults=crash_at(t, rank=2))

        (ev,) = rep.events
        assert ev["failed_ranks"] == [2]
        assert (ev["old_size"], ev["new_size"]) == (4, 3)
        assert rep.summary()["availability"] == 1.0
        assert rep.generated_tokens == 3 * SMOKE.n_requests

    def test_cascading_double_crash(self):
        clean = self.clean()
        t1 = clean.requests[2].token_times[0]
        t2 = clean.requests[-1].token_times[-1]
        plan = FaultPlan(crashes=[RankCrash(rank=3, time=t1),
                                  RankCrash(rank=1, time=0.5 * (t1 + t2))],
                         detect_timeout=1e-4)
        rep = simulate_serving(SMOKE, faults=plan)

        assert [ev["new_size"] for ev in rep.events] == [3, 2]
        assert rep.summary()["availability"] == 1.0
        assert rep.generated_tokens == 3 * SMOKE.n_requests

    def test_shrink_to_lone_survivor(self):
        cfg = replace(SMOKE, p=2, n_requests=8)
        t = simulate_serving(cfg).requests[3].token_times[0]
        rep = simulate_serving(cfg, faults=crash_at(t, rank=0))

        (ev,) = rep.events
        assert (ev["old_size"], ev["new_size"]) == (2, 1)
        assert rep.summary()["availability"] == 1.0

    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("runner", RUNNERS)
    def test_bit_identical_across_runners_and_fused(self, runner, fused):
        rec = next(r for r in self.clean().requests
                   if len(r.token_times) >= 2)
        plan = crash_at(0.5 * (rec.token_times[0] + rec.token_times[1]))
        base = signature(simulate_serving(SMOKE, faults=plan))
        got = signature(simulate_serving(SMOKE, faults=plan,
                                         runner=runner, fused=fused))
        assert got == base, (runner, fused)


class TestRequestRobustness:
    def test_retry_release_is_pure_and_capped(self):
        cfg = SMOKE
        a = _retry_release(cfg, rid=7, attempt=1, now=1.0)
        assert a == _retry_release(cfg, rid=7, attempt=1, now=1.0)
        assert a != _retry_release(cfg, rid=8, attempt=1, now=1.0)
        assert a != _retry_release(replace(cfg, seed=9), 7, 1, 1.0)
        for attempt in range(1, 8):
            delay = _retry_release(cfg, 7, attempt, 0.0)
            # capped exponential with jitter in [0, 1): never more than
            # twice the cap, never less than the uncapped base step
            assert delay <= 2.0 * cfg.retry_backoff_cap
            assert delay >= min(cfg.retry_backoff * 2 ** (attempt - 1),
                                cfg.retry_backoff_cap)

    def test_crash_run_repeats_identically(self):
        t = simulate_serving(SMOKE).requests[4].token_times[0]
        a = simulate_serving(SMOKE, faults=crash_at(t))
        b = simulate_serving(SMOKE, faults=crash_at(t))
        assert signature(a) == signature(b)

    def test_shed_accounting(self):
        # max_wait=0 admits at arrival; the analytic service bound alone
        # exceeds the deadline, so every request is shed at admission.
        cfg = replace(SMOKE, n_requests=8, max_wait=0.0, deadline=5e-5)
        rep = simulate_serving(cfg, faults=FaultPlan())
        s = rep.summary()
        assert s["shed"] == 8
        assert s["completed"] == 0
        assert s["availability"] == 0.0
        assert all(r.status == "shed" and not r.token_times
                   for r in rep.requests)

    def test_timeout_reaping(self):
        # with the default max_wait the batcher holds requests queued past
        # a deadline this tight; they are reaped as timeouts, not errors
        cfg = replace(SMOKE, deadline=3e-5)
        rep = simulate_serving(cfg, faults=FaultPlan())
        s = rep.summary()
        assert s["timeout"] > 0
        timed_out = [r for r in rep.requests if r.status == "timeout"]
        assert timed_out and all(not r.token_times for r in timed_out)

    def test_straggler_and_slow_link_degrade_honestly(self):
        plan = FaultPlan(stragglers=[ComputeStraggler(rank=0, factor=40.0)],
                         links=[LinkSlowdown(rank=2, factor=20.0)])
        cfg = replace(SMOKE, deadline=2e-3)
        clean = simulate_serving(SMOKE, faults=FaultPlan())
        slow = simulate_serving(cfg, faults=plan)
        s = slow.summary()
        assert slow.makespan > clean.makespan
        assert s["availability"] < 1.0
        assert s["timeout"] > 0
        assert s["slo_attainment"] <= s["availability"]

    def test_retry_budget_exhaustion_sheds(self):
        clean = simulate_serving(SMOKE)
        t1 = clean.requests[2].token_times[0]
        plan = FaultPlan(crashes=[RankCrash(rank=3, time=t1),
                                  RankCrash(rank=2, time=t1 * 1.5),
                                  RankCrash(rank=1, time=t1 * 2.25)],
                         detect_timeout=1e-4)
        rep = simulate_serving(replace(SMOKE, retry_budget=1), faults=plan)
        dropped = [rid for ev in rep.events for rid in ev["dropped"]]
        if dropped:  # budget bites only if some request is hit twice
            assert rep.summary()["shed"] >= len(set(dropped))
            assert all(rep.requests[rid].status == "shed"
                       for rid in dropped)
        assert rep.summary()["availability"] < 1.0 or not dropped


class TestTransparency:
    def test_plan_less_run_ignores_robustness_knobs(self):
        # deadline/retry knobs are only consulted by the fault-aware loop;
        # without a plan the fast path must not even read them
        base = simulate_serving(SMOKE)
        knobs = simulate_serving(replace(SMOKE, deadline=1e-9,
                                         retry_budget=0,
                                         retry_backoff=1.0))
        assert base.requests == knobs.requests
        assert base.summary() == knobs.summary()
        assert base.checksum == knobs.checksum

    def test_plan_less_report_has_no_degradation_section(self):
        rep = simulate_serving(SMOKE)
        assert rep.faulted is False
        assert rep.events == []
        s = rep.summary()
        for key in ("availability", "slo_attainment", "recovery_time",
                    "shed", "timeout"):
            assert key not in s

    def test_explicit_none_matches_default(self):
        assert signature(simulate_serving(SMOKE)) == \
            signature(simulate_serving(SMOKE, faults=None))

    def test_empty_plan_reports_healthy_degradation_section(self):
        rep = simulate_serving(SMOKE, faults=FaultPlan())
        assert rep.faulted is True
        assert rep.events == []
        s = rep.summary()
        assert s["availability"] == 1.0
        assert s["slo_attainment"] == 1.0
        assert s["recovery_time"] == 0.0
        # same admissions and stamps as the plan-less fast path
        clean = simulate_serving(SMOKE)
        assert [(r.rid, r.admitted, r.token_times) for r in rep.requests] \
            == [(r.rid, r.admitted, r.token_times) for r in clean.requests]
