"""Randomized-program four-way equivalence property test.

One generator rank-program source, built from a random op sequence mixing
point-to-point meshes, dense collectives, async regions, sparse allreduce
schemes and bucketed sessions, runs under four execution configurations —
the generator engine, the cooperative engine with and without the fused
fast path, and the threaded runner — and every observable (results,
traffic counters, simulated makespan) must be bit-identical across all
four.  Fault plans (stragglers, link slowdowns, crashes) get the same
treatment over the runners that support them.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allreduce import ParamLayout, make_allreduce, run_session
from repro.comm import Call, run_spmd
from repro.comm import collectives as coll
from repro.comm.faults import FaultPlan, RankCrash
from repro.errors import RankFailedError

#: (runner, fused) — the four execution configurations under test
CONFIGS = (("gen", None), ("coop", True), ("coop", False),
           ("threads", None))

OPS = ("mesh", "allreduce", "sendrecv", "async", "oktopk", "session",
       "compute")


def _op_plan(seed):
    rng = np.random.default_rng(seed)
    n_ops = int(rng.integers(3, 7))
    return [OPS[int(rng.integers(0, len(OPS)))] for _ in range(n_ops)]


def _prog(comm, seed, ops):
    p, r = comm.size, comm.rank
    out = []
    for i, op in enumerate(ops):
        srng = np.random.default_rng(seed * 31 + i)      # rank-uniform
        drng = np.random.default_rng(seed * 1000 + i * 17 + r)
        if op == "compute":
            comm.compute(1e-7 * (r + 1))
            out.append(comm.clock)
        elif op == "mesh":
            n = int(srng.integers(4, 64))
            reqs = []
            for s in range(1, p):
                reqs.append(comm.irecv((r - s) % p, i))
                reqs.append(comm.isend(
                    drng.normal(size=n).astype(np.float32),
                    (r + s) % p, i))
            got = yield (lambda reqs=reqs: comm.waitall(reqs))
            out.append(sum(float(g.sum()) for g in got if g is not None))
        elif op == "sendrecv":
            got = yield Call(lambda i=i: comm.sendrecv(
                float(r * 10 + i), (r + 1) % p, (r - 1) % p, 100 + i))
            out.append(got)
        elif op == "allreduce":
            algo = ("ring", "recursive_doubling",
                    "rabenseifner")[int(srng.integers(0, 3))]
            x = drng.normal(size=int(srng.integers(8, 128))).astype(
                np.float32)
            s = yield Call(lambda x=x, algo=algo: coll.allreduce(
                comm, x, algo=algo))
            out.append(float(s.sum()))
        elif op == "async":
            def sub(i=i, drng=drng):
                payload = drng.normal(size=16).astype(np.float32)
                with comm.async_region() as reg:
                    req = comm.isend(payload, (r + 1) % p, 200 + i)
                got = comm.recv((r - 1) % p, 200 + i)
                comm.waitall([req])
                comm._advance_clock(reg.finish)
                return float(got.sum())

            out.append((yield Call(sub)))
        elif op == "oktopk":
            algo = make_allreduce("oktopk", density=0.1, tau=2,
                                  tau_prime=2)
            acc = drng.normal(size=int(srng.integers(64, 256))).astype(
                np.float32)
            res = yield Call(lambda algo=algo, acc=acc:
                             algo.reduce(comm, acc, 1))
            out.append(float(np.abs(res.update.to_dense()).sum()))
        elif op == "session":
            n = int(srng.integers(96, 256))
            algo = make_allreduce("gtopk", density=0.1)
            lay = ParamLayout.from_sizes([n // 3, n - n // 3], ["a", "b"])
            acc = drng.normal(size=n).astype(np.float32)
            res = yield Call(lambda algo=algo, lay=lay, acc=acc:
                             run_session(algo, comm, lay, 1, acc,
                                         bucket_size=max(32, n // 4)))
            out.append(float(np.abs(res.update.to_dense()).sum()))
    return out


def _assert_all_identical(runs):
    (base_name, base), *rest = runs
    for name, res in rest:
        assert base.makespan == res.makespan, (base_name, name)
        sa, sb = base.stats, res.stats
        for field in ("words_sent", "words_recv", "msgs_sent", "msgs_recv"):
            np.testing.assert_array_equal(
                getattr(sa, field), getattr(sb, field),
                err_msg=f"{field}: {base_name} vs {name}")
        assert base.results == res.results, (base_name, name)


class TestFourWayRandomPrograms:
    @given(st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_random_program_identical_under_all_configs(self, p, seed):
        ops = _op_plan(seed)
        runs = [(f"{runner}:{fused}",
                 run_spmd(p, _prog, seed, ops, runner=runner, fused=fused))
                for runner, fused in CONFIGS]
        _assert_all_identical(runs)

    @given(st.integers(3, 5), st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_program_under_straggler_plan(self, p, seed):
        """Fault plans without crashes complete normally: runners must
        still agree bit-for-bit (the fused path is auto-disabled)."""
        ops = _op_plan(seed)
        plan = FaultPlan.straggler_skew(p, seed=seed % 97)
        runs = [(runner,
                 run_spmd(p, _prog, seed, ops, runner=runner, faults=plan))
                for runner in ("gen", "coop", "threads")]
        _assert_all_identical(runs)

    @given(st.integers(0, 1000))
    @settings(max_examples=6, deadline=None)
    def test_crash_failure_sets_agree_across_runners(self, seed):
        """A planned crash mid-mesh: every runner must attribute the
        same failure set (the dead rank plus unanimous survivor
        detection collapses to one merged report)."""
        p = 4
        ops = ["mesh", "mesh", "mesh"]
        plan = FaultPlan(crashes=[RankCrash(rank=1, time=2e-6)])
        failed = {}
        for runner in ("gen", "coop", "threads"):
            try:
                run_spmd(p, _prog, seed, ops, runner=runner, faults=plan)
                failed[runner] = frozenset()
            except RankFailedError as e:
                failed[runner] = frozenset(e.failures)
        assert failed["gen"] == failed["coop"] == failed["threads"]
        assert 1 in failed["gen"]
