"""Synthetic datasets and the sharded loader."""

import numpy as np
import pytest

from repro.data import (
    IGNORE,
    MASK_TOKEN,
    ShardedLoader,
    make_an4_like,
    make_cifar_like,
    make_wikipedia_like,
)
from repro.errors import ConfigError


class TestCifarLike:
    def test_shapes_and_dtypes(self):
        train, test = make_cifar_like(64, 16, image_size=16)
        assert train.x.shape == (64, 3, 16, 16)
        assert train.x.dtype == np.float32
        assert train.y.shape == (64,)
        assert len(test) == 16

    def test_deterministic(self):
        a, _ = make_cifar_like(16, 4, seed=7)
        b, _ = make_cifar_like(16, 4, seed=7)
        np.testing.assert_array_equal(a.x, b.x)

    def test_learnable_structure(self):
        """Nearest-template classification beats chance by a wide margin."""
        train, _ = make_cifar_like(200, 10, noise=0.5, seed=1)
        means = np.stack([train.x[train.y == c].mean(axis=0)
                          for c in range(10)])
        flat = train.x.reshape(len(train.x), -1)
        d = ((flat[:, None] - means.reshape(10, -1)[None]) ** 2).sum(-1)
        acc = np.mean(np.argmin(d, axis=1) == train.y)
        assert acc > 0.8


class TestAn4Like:
    def test_shapes(self):
        train, test = make_an4_like(32, 8, features=10, seq_len=12)
        assert train.x.shape == (32, 12, 10)
        assert train.y.shape == (32, 12)
        assert train.y.max() < 12

    def test_phones_span_multiple_frames(self):
        train, _ = make_an4_like(16, 4, min_span=3, max_span=3, seq_len=9)
        # labels change at most every 3 frames
        changes = (np.diff(train.y, axis=1) != 0).sum(axis=1)
        assert np.all(changes <= 3)


class TestWikipediaLike:
    def test_mask_and_targets_consistent(self):
        train, _ = make_wikipedia_like(32, 8, vocab=100, seq_len=16)
        masked = train.x == MASK_TOKEN
        has_target = train.y != IGNORE
        np.testing.assert_array_equal(masked, has_target)
        # targets are real tokens
        assert np.all(train.y[has_target] > 0)

    def test_mask_rate_near_15_percent(self):
        train, _ = make_wikipedia_like(256, 8, vocab=100, seq_len=64,
                                       mask_prob=0.15)
        rate = np.mean(train.x == MASK_TOKEN)
        assert 0.10 < rate < 0.20

    def test_markov_structure_is_predictable(self):
        """The dominant successor follows its predecessor >= 40% of the
        time, so context carries signal."""
        train, _ = make_wikipedia_like(64, 8, vocab=50, seq_len=64, seed=3)
        pairs = {}
        for row in train.y * 0 + train.x:  # use unmasked x as proxy
            for a, b in zip(row[:-1], row[1:]):
                if a != MASK_TOKEN and b != MASK_TOKEN:
                    pairs.setdefault(int(a), []).append(int(b))
        top_frac = []
        for a, succ in pairs.items():
            if len(succ) >= 10:
                vals, counts = np.unique(succ, return_counts=True)
                top_frac.append(counts.max() / len(succ))
        assert np.mean(top_frac) > 0.4


class TestShardedLoader:
    def _split(self, n=40):
        from repro.data import Split
        x = np.arange(n, dtype=np.float32)[:, None]
        y = np.arange(n, dtype=np.int64)
        return Split(x, y)

    def test_shards_partition_global_batch(self):
        split = self._split()
        loaders = [ShardedLoader(split, 8, r, 4, seed=1) for r in range(4)]
        rows = np.concatenate([ld.next_batch(1)[1] for ld in loaders])
        assert len(rows) == 8
        assert len(np.unique(rows)) == 8  # disjoint shards

    def test_epoch_reshuffle(self):
        split = self._split(16)
        ld = ShardedLoader(split, 16, 0, 1, seed=2)
        e1 = ld.next_batch(1)[1]
        e2 = ld.next_batch(2)[1]
        assert not np.array_equal(e1, e2)
        assert sorted(e1) == sorted(e2)  # same data, new order

    def test_deterministic_across_ranks(self):
        split = self._split()
        a = ShardedLoader(split, 10, 2, 5, seed=3).next_batch(4)[1]
        b = ShardedLoader(split, 10, 2, 5, seed=3).next_batch(4)[1]
        np.testing.assert_array_equal(a, b)

    def test_uneven_shards(self):
        split = self._split(30)
        loaders = [ShardedLoader(split, 10, r, 3, seed=0) for r in range(3)]
        sizes = [ld.local_batch for ld in loaders]
        assert sum(sizes) == 10

    def test_config_errors(self):
        split = self._split(8)
        with pytest.raises(ConfigError):
            ShardedLoader(split, 2, 0, 4)
        with pytest.raises(ConfigError):
            ShardedLoader(split, 16, 0, 2)
