"""Property-based tests (hypothesis) for the sparse primitives."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse import (
    COOVector,
    combine_sum,
    exact_topk,
    kth_largest_abs,
    sanitize_boundaries,
    threshold_select,
    topk_indices,
    validate_boundaries,
)

floats32 = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                     allow_infinity=False, width=32)


def dense_vectors(min_size=1, max_size=200):
    return hnp.arrays(np.float32, st.integers(min_size, max_size),
                      elements=floats32)


def coo_vectors(n=64, max_nnz=32):
    @st.composite
    def _build(draw):
        nnz = draw(st.integers(0, min(max_nnz, n)))
        idx = draw(st.permutations(range(n)))[:nnz]
        vals = draw(st.lists(floats32, min_size=nnz, max_size=nnz))
        return COOVector.from_arrays(
            n, np.array(sorted(idx), dtype=np.int32),
            np.array([v for _, v in sorted(zip(idx, vals))],
                     dtype=np.float32), sort=False)
    return _build()


class TestTopkProperties:
    @given(dense_vectors(), st.integers(1, 250))
    @settings(max_examples=60, deadline=None)
    def test_topk_size_and_threshold(self, x, k):
        idx = topk_indices(x, k)
        assert idx.size == min(k, x.size)
        assert np.all(np.diff(idx) > 0)
        if 0 < k <= x.size:
            th = kth_largest_abs(x, k)
            # all selected are >= threshold, all excluded are <= threshold
            mag = np.abs(x)
            assert np.all(mag[idx] >= th)
            excluded = np.setdiff1d(np.arange(x.size), idx)
            if excluded.size:
                assert np.all(mag[excluded] <= th)

    @given(dense_vectors(), st.integers(1, 250))
    @settings(max_examples=40, deadline=None)
    def test_topk_idempotent(self, x, k):
        v = exact_topk(x, k)
        assert v.topk(k) == v

    @given(dense_vectors(min_size=2), st.integers(1, 100))
    @settings(max_examples=40, deadline=None)
    def test_topk_captures_max_mass(self, x, k):
        """No k-subset has more L1 mass than the top-k selection."""
        v = exact_topk(x, k)
        rng = np.random.default_rng(0)
        kk = min(k, x.size)
        mass = np.abs(v.values).astype(np.float64).sum()
        for _ in range(5):
            other = rng.choice(x.size, size=kk, replace=False)
            other_mass = np.abs(x[other]).astype(np.float64).sum()
            assert mass >= other_mass - 1e-3 - 1e-6 * abs(other_mass)

    @given(dense_vectors(), st.floats(0, 1e4, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_threshold_select_is_filter(self, x, th):
        v = threshold_select(x, th)
        mask = np.abs(x) >= th
        assert v.nnz == int(mask.sum())
        np.testing.assert_array_equal(np.flatnonzero(mask), v.indices)


class TestCOOAlgebra:
    @given(coo_vectors(), coo_vectors())
    @settings(max_examples=60, deadline=None)
    def test_combine_commutative(self, a, b):
        ab = a.combine(b).to_dense()
        ba = b.combine(a).to_dense()
        np.testing.assert_allclose(ab, ba, rtol=1e-5, atol=1e-3)

    @given(coo_vectors(), coo_vectors(), coo_vectors())
    @settings(max_examples=40, deadline=None)
    def test_combine_associative(self, a, b, c):
        left = a.combine(b).combine(c).to_dense().astype(np.float64)
        right = a.combine(b.combine(c)).to_dense().astype(np.float64)
        np.testing.assert_allclose(left, right, rtol=1e-4, atol=1e-2)

    @given(coo_vectors())
    @settings(max_examples=40, deadline=None)
    def test_combine_with_empty_is_identity(self, a):
        out = a.combine(COOVector.empty(a.n))
        assert out == a or np.allclose(out.to_dense(), a.to_dense())

    @given(coo_vectors())
    @settings(max_examples=40, deadline=None)
    def test_dense_roundtrip(self, a):
        dense = a.to_dense()
        back = COOVector.from_dense(dense, np.flatnonzero(dense))
        np.testing.assert_array_equal(back.to_dense(), dense)

    @given(coo_vectors(), st.integers(0, 64), st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_restrict_range(self, a, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        r = a.restrict(lo, hi)
        assert np.all((r.indices >= lo) & (r.indices < hi))
        inside = (a.indices >= lo) & (a.indices < hi)
        assert r.nnz == int(inside.sum())

    @given(coo_vectors(), st.lists(st.integers(0, 64), min_size=1,
                                   max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_support(self, a, cuts):
        bounds = np.array([0] + sorted(cuts) + [a.n], dtype=np.int64)
        parts = a.split(bounds)
        assert len(parts) == len(bounds) - 1
        assert sum(p.nnz for p in parts) == a.nnz
        merged = combine_sum(parts) if parts else a
        np.testing.assert_allclose(merged.to_dense(), a.to_dense())


class TestBoundaryProperties:
    @given(hnp.arrays(np.float64, st.integers(2, 10),
                      elements=st.floats(-100, 300, allow_nan=False)),
           st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_sanitize_always_valid(self, raw, n):
        out = sanitize_boundaries(raw, n)
        validate_boundaries(out, n)
