"""Dense collectives vs. numpy references at power-of-two and odd P."""

import numpy as np
import pytest

from repro.comm import NetworkModel, collectives as coll, run_spmd

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


def _rank_vector(rank: int, n: int = 64) -> np.ndarray:
    rng = np.random.default_rng(1000 + rank)
    return rng.normal(size=n).astype(np.float32)


def _expected_sum(p: int, n: int = 64) -> np.ndarray:
    return np.sum([_rank_vector(r, n) for r in range(p)], axis=0)


class TestBcast:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("root", [0, "last"])
    def test_bcast_matches_root_value(self, p, root):
        root = p - 1 if root == "last" else 0

        def prog(comm):
            obj = _rank_vector(comm.rank) if comm.rank == root else None
            return coll.bcast(comm, obj, root=root)

        res = run_spmd(p, prog)
        for r in range(p):
            np.testing.assert_array_equal(res[r], _rank_vector(root))


class TestReduce:
    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_sum_to_root(self, p):
        def prog(comm):
            return coll.reduce(comm, _rank_vector(comm.rank), root=0)

        res = run_spmd(p, prog)
        np.testing.assert_allclose(res[0], _expected_sum(p), rtol=1e-4, atol=1e-5)
        assert all(res[r] is None for r in range(1, p))

    @pytest.mark.parametrize("p", [4, 5])
    def test_reduce_max(self, p):
        def prog(comm):
            return coll.reduce(comm, _rank_vector(comm.rank), root=0,
                               op=np.maximum)

        res = run_spmd(p, prog)
        expect = np.max([_rank_vector(r) for r in range(p)], axis=0)
        np.testing.assert_allclose(res[0], expect)


class TestAllreduce:
    @pytest.mark.parametrize("p", SIZES)
    @pytest.mark.parametrize("algo", ["recursive_doubling", "ring",
                                      "rabenseifner", "auto"])
    def test_allreduce_sum(self, p, algo):
        def prog(comm):
            return coll.allreduce(comm, _rank_vector(comm.rank), algo=algo)

        res = run_spmd(p, prog)
        expect = _expected_sum(p)
        for r in range(p):
            np.testing.assert_allclose(res[r], expect, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("n", [1, 2, 13, 63, 64, 65])
    def test_allreduce_odd_vector_lengths(self, n):
        def prog(comm):
            return coll.allreduce(comm, _rank_vector(comm.rank, n))

        res = run_spmd(8, prog)
        expect = _expected_sum(8, n)
        for r in range(8):
            np.testing.assert_allclose(res[r], expect, rtol=1e-4, atol=1e-5)

    def test_unknown_algo_raises(self):
        from repro.errors import RankFailedError

        def prog(comm):
            return coll.allreduce(comm, _rank_vector(0), algo="nope")

        with pytest.raises(RankFailedError):
            run_spmd(2, prog)

    def test_rabenseifner_bandwidth_optimal_volume(self):
        """Table 1 Dense row: about 2 n (P-1)/P words sent per rank."""
        p, n = 8, 4096

        def prog(comm):
            return coll.allreduce_rabenseifner(
                comm, _rank_vector(comm.rank, n))

        res = run_spmd(p, prog)
        per_rank_sent = res.stats.words_sent
        expect = 2 * n * (p - 1) / p
        assert np.all(per_rank_sent <= expect * 1.05 + 16)
        assert np.all(per_rank_sent >= expect * 0.95 - 16)

    def test_ring_latency_structure(self):
        """Ring allreduce makespan ~ 2(P-1)(alpha + beta n/P)."""
        p, n = 4, 4096
        model = NetworkModel(alpha=1e-4, beta=1e-8, gamma=0.0)

        def prog(comm):
            return coll.allreduce_ring(comm, np.zeros(n, dtype=np.float32))

        res = run_spmd(p, prog, model=model)
        expect = 2 * (p - 1) * (1e-4 + 1e-8 * n / p)
        assert res.makespan == pytest.approx(expect, rel=0.15)


class TestReduceScatterAllgather:
    @pytest.mark.parametrize("p", SIZES)
    def test_reduce_scatter_ring_blocks(self, p):
        n = 64

        def prog(comm):
            block, sl = coll.reduce_scatter_ring(comm, _rank_vector(comm.rank, n))
            return block, (sl.start, sl.stop)

        res = run_spmd(p, prog)
        expect = _expected_sum(p, n)
        covered = np.zeros(n, dtype=bool)
        for r in range(p):
            block, (lo, hi) = res[r]
            np.testing.assert_allclose(block, expect[lo:hi], rtol=1e-4, atol=1e-5)
            covered[lo:hi] = True
        assert covered.all()

    @pytest.mark.parametrize("p", SIZES)
    def test_ring_allgather_roundtrip(self, p):
        n = 64

        def prog(comm):
            block, _ = coll.reduce_scatter_ring(comm, _rank_vector(comm.rank, n))
            return coll.allgather_ring(comm, block, n)

        res = run_spmd(p, prog)
        expect = _expected_sum(p, n)
        for r in range(p):
            np.testing.assert_allclose(res[r], expect, rtol=1e-4, atol=1e-5)


class TestAllgatherv:
    @pytest.mark.parametrize("p", SIZES)
    def test_variable_blocks_everywhere(self, p):
        def prog(comm):
            block = np.full(comm.rank + 1, float(comm.rank), dtype=np.float32)
            return coll.allgatherv(comm, block)

        res = run_spmd(p, prog)
        for r in range(p):
            got = res[r]
            assert len(got) == p
            for owner in range(p):
                np.testing.assert_array_equal(
                    got[owner],
                    np.full(owner + 1, float(owner), dtype=np.float32))

    def test_allgather_concatenation(self):
        def prog(comm):
            return coll.allgather(comm, np.array([comm.rank], dtype=np.int32))

        res = run_spmd(5, prog)
        for r in range(5):
            np.testing.assert_array_equal(res[r], np.arange(5, dtype=np.int32))

    def test_allgather_object(self):
        def prog(comm):
            return coll.allgather_object(comm, {"rank": comm.rank})

        res = run_spmd(6, prog)
        assert res[3] == [{"rank": r} for r in range(6)]

    def test_receive_volume_is_total_minus_own(self):
        p, b = 8, 128

        def prog(comm):
            return coll.allgatherv(
                comm, np.zeros(b, dtype=np.float32))

        res = run_spmd(p, prog)
        # Each rank receives (p-1) foreign blocks exactly once plus tiny
        # control overhead (owner ids).
        recv = res.stats.words_recv
        assert np.all(recv >= (p - 1) * b)
        assert np.all(recv <= (p - 1) * b + p * 4)


class TestAlltoall:
    @pytest.mark.parametrize("p", SIZES)
    def test_personalized_exchange(self, p):
        def prog(comm):
            blocks = [np.array([comm.rank * 100 + j], dtype=np.int32)
                      for j in range(p)]
            return coll.alltoallv(comm, blocks)

        res = run_spmd(p, prog)
        for r in range(p):
            for src in range(p):
                np.testing.assert_array_equal(
                    res[r][src], np.array([src * 100 + r], dtype=np.int32))

    def test_wrong_block_count_raises(self):
        from repro.errors import RankFailedError

        def prog(comm):
            return coll.alltoallv(comm, [None])

        with pytest.raises(RankFailedError):
            run_spmd(3, prog)


class TestGatherScatter:
    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_gather(self, p):
        def prog(comm):
            return coll.gather(comm, comm.rank * 2, root=0)

        res = run_spmd(p, prog)
        assert res[0] == [r * 2 for r in range(p)]

    @pytest.mark.parametrize("p", [1, 3, 4])
    def test_scatter(self, p):
        def prog(comm):
            objs = [f"item{j}" for j in range(p)] if comm.rank == 0 else None
            return coll.scatter(comm, objs, root=0)

        res = run_spmd(p, prog)
        assert [res[r] for r in range(p)] == [f"item{r}" for r in range(p)]


class TestBarrier:
    @pytest.mark.parametrize("p", [2, 3, 8])
    def test_barrier_synchronizes_clocks(self, p):
        def prog(comm):
            # Rank 0 computes for a long time; after the barrier everyone's
            # clock must be at least that long.
            if comm.rank == 0:
                comm.compute(1.0)
            coll.barrier(comm)
            return comm.clock

        res = run_spmd(p, prog)
        assert all(c >= 1.0 for c in res.results)
