"""Property-based tests: allreduce semantics and volume invariants on
randomized inputs, worker counts and parameters."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.allreduce import make_allreduce
from repro.comm import run_spmd
from repro.sparse import combine_sum, exact_topk


def _grads(p: int, n: int, seed: int):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n).astype(np.float32) for _ in range(p)]


@st.composite
def configs(draw):
    p = draw(st.integers(1, 6))
    n = draw(st.integers(8, 256))
    k = draw(st.integers(1, max(1, n // 4)))
    seed = draw(st.integers(0, 10_000))
    return p, n, k, seed


class TestOkTopkProperties:
    @given(configs())
    @settings(max_examples=25, deadline=None)
    def test_exact_semantics(self, cfg):
        """With fresh thresholds, Ok-Topk == Topk(sum of local top-k) for
        arbitrary shapes and worker counts."""
        p, n, k, seed = cfg
        grads = _grads(p, n, seed)

        def prog(comm):
            algo = make_allreduce("oktopk", k=k, tau_prime=1)
            return algo.reduce(comm, grads[comm.rank], 1)

        res = run_spmd(p, prog)
        expect = combine_sum([exact_topk(g, k) for g in grads]).topk(k)
        got = res[0].update
        got.validate()
        np.testing.assert_allclose(got.to_dense(), expect.to_dense(),
                                   rtol=1e-4, atol=1e-4)

    @given(configs())
    @settings(max_examples=15, deadline=None)
    def test_volume_upper_bound(self, cfg):
        """Eq. 3: steady-state receive volume <= 6k(P-1)/P + control."""
        p, n, k, seed = cfg
        grads1 = _grads(p, n, seed)
        grads2 = _grads(p, n, seed + 1)

        def prog(comm):
            algo = make_allreduce("oktopk", k=k, tau_prime=100)
            algo.reduce(comm, grads1[comm.rank], 1)
            before = int(comm.net.words_recv[comm.rank])
            algo.reduce(comm, grads2[comm.rank], 2)
            return int(comm.net.words_recv[comm.rank]) - before

        res = run_spmd(p, prog)
        hi = 6 * k * (p - 1) / p
        slack = 12 * p + 64  # boundaries consensus + sizes + owner ids
        # selection by a reused threshold can deviate from k; measure
        # against the worst-case guarded selection (3k)
        guard = 3.0
        for r in range(p):
            assert res[r] <= guard * hi + slack, (cfg, res.results)

    @given(configs())
    @settings(max_examples=15, deadline=None)
    def test_all_ranks_agree(self, cfg):
        p, n, k, seed = cfg
        grads = _grads(p, n, seed)

        def prog(comm):
            algo = make_allreduce("oktopk", k=k)
            return algo.reduce(comm, grads[comm.rank], 1).update

        res = run_spmd(p, prog)
        for r in range(1, p):
            assert res[r] == res[0]


class TestLosslessSchemes:
    @given(configs(), st.sampled_from(["topka", "topkdsa"]))
    @settings(max_examples=20, deadline=None)
    def test_sum_of_local_topk(self, cfg, scheme):
        p, n, k, seed = cfg
        grads = _grads(p, n, seed)

        def prog(comm):
            algo = make_allreduce(scheme, k=k)
            return algo.reduce(comm, grads[comm.rank], 1)

        res = run_spmd(p, prog)
        expect = combine_sum([exact_topk(g, k) for g in grads])
        np.testing.assert_allclose(res[0].update.to_dense(),
                                   expect.to_dense(), rtol=1e-4, atol=1e-4)

    @given(configs())
    @settings(max_examples=15, deadline=None)
    def test_dense_is_exact(self, cfg):
        p, n, _, seed = cfg
        grads = _grads(p, n, seed)

        def prog(comm):
            algo = make_allreduce("dense")
            return algo.reduce(comm, grads[comm.rank], 1)

        res = run_spmd(p, prog)
        expect = np.sum(grads, axis=0)
        np.testing.assert_allclose(res[0].update, expect,
                                   rtol=1e-4, atol=1e-4)


class TestResidualInvariant:
    @given(configs())
    @settings(max_examples=15, deadline=None)
    def test_no_gradient_mass_lost(self, cfg):
        """Error feedback invariant: after a step, every accumulator entry
        is either in the residual or contributed to the update."""
        from repro.optim import TopkSGD
        p, n, k, seed = cfg
        grads = _grads(p, n, seed)

        def prog(comm):
            algo = make_allreduce("oktopk", k=k, tau_prime=1)
            opt = TopkSGD(algo, 0.5, n)
            acc_expected = opt.residual + 0.5 * grads[comm.rank]
            info = opt.step(comm, np.zeros(n, dtype=np.float32),
                            grads[comm.rank])
            contributed = info.result.contributed_indices
            mask = np.ones(n, dtype=bool)
            mask[contributed] = False
            ok_resid = np.allclose(opt.residual[mask], acc_expected[mask],
                                   rtol=1e-5, atol=1e-6)
            ok_zero = np.all(opt.residual[contributed] == 0)
            return ok_resid and ok_zero

        res = run_spmd(p, prog)
        assert all(res.results)
