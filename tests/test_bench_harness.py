"""The benchmark harness itself: proxies, projections, formatting."""

import numpy as np
import pytest

from repro.allreduce import PAPER_ORDER
from repro.bench import (
    PAPER_MODEL_SIZES,
    bert_proxy,
    format_table,
    lstm_proxy,
    paper_scale_breakdown,
    train_scheme,
    vgg_proxy,
)
from repro.bench.harness import proxy_network


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 0.001]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_float_formatting(self):
        text = format_table(["v"], [[1e-9], [12345.678], [0.5], [0.0]])
        assert "1.000e-09" in text
        assert "1.235e+04" in text
        assert "0.5" in text


class TestProxies:
    @pytest.mark.parametrize("builder", [vgg_proxy, lstm_proxy, bert_proxy])
    def test_build_and_short_train(self, builder):
        proxy = builder()
        rec = train_scheme(proxy, "oktopk", 2, 2, density=0.05,
                           network=proxy_network())
        assert len(rec.records) == 2
        assert rec.records[0].compute_time > 0
        assert np.isfinite(rec.records[-1].loss)

    def test_proxies_have_eval(self):
        for builder, key in ((vgg_proxy, "acc"), (lstm_proxy, "wer"),
                             (bert_proxy, "loss")):
            proxy = builder()
            rec = train_scheme(proxy, "dense", 2, 2, eval_every=2,
                               network=proxy_network())
            assert key in rec.final_eval()


class TestPaperScaleProjection:
    def test_breakdown_for_all_schemes_and_models(self):
        for model in PAPER_MODEL_SIZES:
            for scheme in PAPER_ORDER:
                b = paper_scale_breakdown(model, scheme, 32)
                assert b["total"] > 0
                assert b["total"] == pytest.approx(
                    b["sparsification"] + b["communication"]
                    + b["computation+io"])

    def test_oktopk_wins_at_scale_for_all_models(self):
        for model in PAPER_MODEL_SIZES:
            totals = {s: paper_scale_breakdown(model, s, 256)["total"]
                      for s in PAPER_ORDER}
            assert totals["oktopk"] == min(totals.values()), (model, totals)
