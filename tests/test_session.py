"""Session-based bucketed allreduce: layout/fusion units, session vs
one-shot bit-identity (results, traffic, makespans) for every scheme under
both runners, native per-bucket paths, and the generic overlap timeline
(DenseOvlp legacy reproduction + comm-bound sparse overlap wins)."""

import numpy as np
import pytest

from repro.allreduce import (
    PAPER_ORDER,
    BucketStat,
    ParamLayout,
    make_allreduce,
    run_session,
    split_k,
    visible_comm_time,
)
from repro.comm import NetworkModel, run_spmd
from repro.errors import ConfigError
from repro.sparse import COOVector

RUNNERS = ("coop", "threads")

#: scheme name -> constructor kwargs beyond the k/density budget
SCHEME_KWARGS = {
    "oktopk": {"tau": 2, "tau_prime": 2},
    "oktopk_q": {"tau": 2, "tau_prime": 2, "stochastic": False},
    "topka_q": {"stochastic": False},
}
ALL_SCHEMES = PAPER_ORDER + ["topka_q", "oktopk_q"]


def _make(scheme, n, density=0.1):
    kwargs = dict(SCHEME_KWARGS.get(scheme, {}))
    if scheme not in ("dense", "dense_ovlp"):
        kwargs["density"] = density
    return make_allreduce(scheme, **kwargs)


def _layout(n):
    """An uneven multi-segment layout covering n words."""
    sizes = [n // 4, n // 8, n // 2 - n // 8, n - n // 4 - n // 2]
    return ParamLayout.from_sizes(sizes, ["head", "norm", "body", "tail"])


def _acc(rank, n, t):
    rng = np.random.default_rng(1000 * rank + t)
    return rng.normal(size=n).astype(np.float32)


# ---------------------------------------------------------------------------
# ParamLayout / fusion / split_k units
# ---------------------------------------------------------------------------
class TestParamLayout:
    def test_from_sizes_offsets_and_names(self):
        lay = ParamLayout.from_sizes([3, 5, 2], ["a", "b", "c"])
        assert lay.n == 10 and len(lay) == 3
        assert [s.offset for s in lay] == [0, 3, 8]
        assert [s.name for s in lay] == ["a", "b", "c"]
        assert lay[1].sl == slice(3, 8)

    def test_single(self):
        lay = ParamLayout.single(7)
        assert lay.n == 7 and len(lay) == 1

    def test_push_order_is_reverse(self):
        lay = ParamLayout.from_sizes([3, 5, 2])
        assert [s.index for s in lay.push_order()] == [2, 1, 0]

    def test_fuse_none_is_one_bucket(self):
        lay = ParamLayout.from_sizes([3, 5, 2])
        plan = lay.fuse(None)
        assert len(plan) == 1 and len(plan[0]) == 3

    def test_fuse_closes_at_threshold(self):
        lay = ParamLayout.from_sizes([30, 50, 20])
        plan = lay.fuse(40)
        # push order: 20, 50, 30 -> bucket [20+50], bucket [30]
        assert [[s.size for s in b] for b in plan] == [[20, 50], [30]]

    def test_fuse_tiny_bucket_is_per_segment(self):
        lay = ParamLayout.from_sizes([30, 50, 20])
        plan = lay.fuse(1)
        assert [[s.size for s in b] for b in plan] == [[20], [50], [30]]

    def test_bad_layout_rejected(self):
        from repro.allreduce import ParamSegment
        with pytest.raises(ConfigError):
            ParamLayout([ParamSegment(0, "a", 4, 3)])  # offset gap
        with pytest.raises(ConfigError):
            ParamLayout([])

    def test_fuse_bad_bucket_size(self):
        with pytest.raises(ConfigError):
            ParamLayout.single(8).fuse(0)


class TestSplitK:
    def test_sums_to_k_and_proportional(self):
        ks = split_k(100, [500, 300, 200])
        assert sum(ks) == 100
        assert ks == [50, 30, 20]

    def test_largest_remainder(self):
        ks = split_k(8, [3, 3, 4])
        assert sum(ks) == 8 and all(k >= 1 for k in ks)

    def test_each_at_least_one_when_k_allows(self):
        ks = split_k(4, [1000, 1, 1, 1])
        assert sum(ks) == 4 and min(ks) == 1

    def test_k_capped_at_total_length(self):
        assert sum(split_k(50, [10, 10])) == 20

    def test_deterministic(self):
        assert split_k(7, [33, 33, 34]) == split_k(7, [33, 33, 34])

    def test_k_less_than_nbuckets_leaves_zero_buckets(self):
        """When k < nbuckets some buckets legally get a zero budget
        (the session path must then skip them, never run them)."""
        ks = split_k(2, [10, 10, 10, 10])
        assert ks == [1, 1, 0, 0]

    def test_k_zero_gives_all_zero(self):
        assert split_k(0, [5, 5]) == [0, 0]

    def test_single_element_buckets(self):
        assert split_k(3, [1, 1, 1]) == [1, 1, 1]
        ks = split_k(2, [1, 1, 1])
        assert sum(ks) == 2 and set(ks) == {0, 1}

    def test_empty_lengths(self):
        assert split_k(5, []) == []

    # -- property-style sweeps over random budget/length configurations --

    @staticmethod
    def _random_cases(ncases=200, seed=1234):
        rng = np.random.default_rng(seed)
        for _ in range(ncases):
            nb = int(rng.integers(1, 12))
            lengths = [int(rng.integers(1, 500)) for _ in range(nb)]
            k = int(rng.integers(0, 2 * sum(lengths)))
            yield k, lengths

    def test_property_shares_sum_exactly_to_k(self):
        """sum(shares) == min(k, total) for any configuration — the global
        budget is never inflated or silently dropped."""
        for k, lengths in self._random_cases():
            ks = split_k(k, lengths)
            assert sum(ks) == min(k, sum(lengths)), (k, lengths, ks)
            assert all(s >= 0 for s in ks)
            assert all(s <= ln for s, ln in zip(ks, lengths)), \
                (k, lengths, ks)

    def test_property_every_bucket_funded_when_k_allows(self):
        """k >= nbuckets: the donor-steal loop lifts every zero share to
        one (mirroring resolve_k's floor of one selected element)."""
        for k, lengths in self._random_cases(seed=77):
            if k < len(lengths):
                continue
            ks = split_k(k, lengths)
            assert min(ks) >= 1, (k, lengths, ks)

    def test_property_remainder_ties_deterministic(self):
        """Equal-length buckets with a non-divisible budget: remainder
        ties break toward earlier buckets, identically on every call."""
        ks = split_k(7, [100, 100, 100, 100])
        assert ks == [2, 2, 2, 1]          # earlier buckets win the tie
        for k, lengths in self._random_cases(seed=9):
            assert split_k(k, lengths) == split_k(k, lengths)

    def test_property_k_above_total_clamps(self):
        """k > sum(lengths) clamps to the total: every element funded,
        no share exceeds its bucket length."""
        for _, lengths in self._random_cases(ncases=50, seed=5):
            total = sum(lengths)
            ks = split_k(total + 17, lengths)
            assert ks == list(lengths)


# ---------------------------------------------------------------------------
# Session vs one-shot: bit-identical results, traffic and makespans
# ---------------------------------------------------------------------------
def _run_mode(scheme, p, n, iters, mode, runner, bucket_size=None):
    """Run `iters` reductions; returns (dense updates, stats, clocks)."""
    lay = _layout(n)

    def prog(comm):
        algo = _make(scheme, n)
        outs = []
        for t in range(1, iters + 1):
            acc = _acc(comm.rank, n, t)
            if mode == "oneshot":
                res = algo.reduce(comm, acc, t)
            else:
                res = run_session(algo, comm, lay, t, acc,
                                  bucket_size=bucket_size)
            outs.append(res.update_dense(n).copy())
        return outs

    spmd = run_spmd(p, prog, runner=runner)
    clocks = [spmd.network.clocks[r] for r in range(p)]
    return spmd[0], spmd.stats, clocks


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_session_bit_identical_to_oneshot(scheme):
    """Default sessions (bucket_size=None) == one-shot reduce, bitwise."""
    p, n, iters = 4, 256, 3
    ref, ref_stats, ref_clocks = _run_mode(scheme, p, n, iters,
                                           "oneshot", "coop")
    for runner in RUNNERS:
        got, stats, clocks = _run_mode(scheme, p, n, iters,
                                       "session", runner)
        for t in range(iters):
            assert np.array_equal(ref[t], got[t]), (scheme, runner, t)
        assert np.array_equal(ref_stats.words_sent, stats.words_sent)
        assert np.array_equal(ref_stats.words_recv, stats.words_recv)
        assert np.array_equal(ref_stats.msgs_sent, stats.msgs_sent)
        assert clocks == ref_clocks, (scheme, runner)


@pytest.mark.parametrize("scheme", ["oktopk", "oktopk_q"])
def test_oktopk_single_bucket_plan_delegates(scheme):
    """Ok-Topk with a one-bucket plan (bucket_size >= n) delegates to the
    one-shot reduce — bit-identical results, traffic and makespans."""
    p, n, iters = 4, 256, 3
    ref, ref_stats, ref_clocks = _run_mode(scheme, p, n, iters,
                                           "oneshot", "coop")
    got, stats, clocks = _run_mode(scheme, p, n, iters, "session",
                                   "coop", bucket_size=10 * n)
    for t in range(iters):
        assert np.array_equal(ref[t], got[t])
    assert np.array_equal(ref_stats.words_recv, stats.words_recv)
    assert clocks == ref_clocks


def test_non_bucketable_scheme_delegates_with_bucket_size():
    """A scheme without the native path delegates even with bucket_size
    set — still bit-identical to one-shot."""
    from repro.allreduce import TopkAAllreduce

    class NonBucketable(TopkAAllreduce):
        name = "topka_nonbucketable_test"
        bucketable = False

    p, n, iters = 4, 256, 2
    lay = _layout(n)

    def prog(comm, mode):
        algo = NonBucketable(density=0.1)
        outs = []
        for t in range(1, iters + 1):
            acc = _acc(comm.rank, n, t)
            if mode == "oneshot":
                res = algo.reduce(comm, acc, t)
            else:
                res = run_session(algo, comm, lay, t, acc, bucket_size=64)
            outs.append(res.update_dense(n).copy())
        return outs

    ref = run_spmd(p, prog, "oneshot")
    got = run_spmd(p, prog, "session")
    for t in range(iters):
        assert np.array_equal(ref[0][t], got[0][t])
    assert np.array_equal(ref.stats.words_recv, got.stats.words_recv)
    assert [ref.network.clocks[r] for r in range(p)] == \
           [got.network.clocks[r] for r in range(p)]


def test_bucketed_identical_across_runners():
    """The native multi-bucket path is runner-independent (results,
    traffic, makespans) like everything else in the simulator."""
    p, n, iters = 4, 256, 2
    base = None
    for runner in RUNNERS:
        got = _run_mode("topka", p, n, iters, "session", runner,
                        bucket_size=64)
        if base is None:
            base = got
        else:
            for t in range(iters):
                assert np.array_equal(base[0][t], got[0][t])
            assert np.array_equal(base[1].words_recv, got[1].words_recv)
            assert base[2] == got[2]


# ---------------------------------------------------------------------------
# Native per-bucket execution
# ---------------------------------------------------------------------------
class TestNativeBucketed:
    def test_dense_bucketed_matches_oneshot_sum(self):
        p, n = 4, 256
        lay = _layout(n)

        def prog(comm):
            acc = _acc(comm.rank, n, 1)
            res = run_session(make_allreduce("dense"), comm, lay, 1, acc,
                              bucket_size=64)
            return acc, res

        results = run_spmd(p, prog)
        total = np.sum([acc for acc, _ in results], axis=0)
        for _, res in results:
            assert res.contributed_indices is None
            assert res.nbuckets > 1
            np.testing.assert_allclose(res.update, total, rtol=1e-4,
                                       atol=1e-4)

    def test_topka_bucketed_k_split_and_sorted_output(self):
        p, n, k = 4, 256, 32
        lay = _layout(n)

        def prog(comm):
            algo = make_allreduce("topka", k=k)
            acc = _acc(comm.rank, n, 1)
            return run_session(algo, comm, lay, 1, acc, bucket_size=64)

        res = run_spmd(p, prog)[0]
        assert isinstance(res.update, COOVector)
        res.update.validate()          # sorted, in-range, right dtypes
        assert sum(res.info["bucket_k"]) == k
        assert res.info["selected"] == k        # each rank selects k total
        # contributed indices sorted ascending across bucket boundaries
        contrib = res.contributed_indices
        assert np.all(np.diff(contrib) > 0)
        stats = res.bucket_stats
        assert [st.k for st in stats] == res.info["bucket_k"]
        # push order: bucket offsets descend (backward emits tail first)
        assert [st.lo for st in stats] == sorted(
            (st.lo for st in stats), reverse=True)

    def test_release_fractions_monotone(self):
        p, n = 2, 256
        lay = _layout(n)

        def prog(comm):
            algo = make_allreduce("topka", density=0.1)
            return run_session(algo, comm, lay, 1, _acc(comm.rank, n, 1),
                               bucket_size=32)

        res = run_spmd(p, prog)[0]
        fracs = [st.release_frac for st in res.bucket_stats]
        assert all(0.0 < f <= 1.0 for f in fracs)
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_dense_ovlp_bucketed_matches_dense_traffic(self):
        """DenseOvlp under a session is exactly dense + bucketing on the
        wire; only its overlap contract (release 0.0) differs."""
        p, n = 4, 256

        def prog(comm, scheme):
            lay = _layout(n)
            algo = make_allreduce(scheme)
            return run_session(algo, comm, lay, 1, _acc(comm.rank, n, 1),
                               bucket_size=64)

        dense = run_spmd(p, prog, "dense")
        ovlp = run_spmd(p, prog, "dense_ovlp")
        assert np.array_equal(dense.stats.words_recv,
                              ovlp.stats.words_recv)
        assert [dense.network.clocks[r] for r in range(p)] == \
               [ovlp.network.clocks[r] for r in range(p)]
        np.testing.assert_array_equal(dense[0].update, ovlp[0].update)
        assert all(st.release_frac == 0.0
                   for st in ovlp[0].bucket_stats)
        assert all(st.release_frac > 0.0
                   for st in dense[0].bucket_stats)

    @pytest.mark.parametrize("scheme", ["topka", "topka_q", "gtopk",
                                        "gaussiank", "topkdsa"])
    def test_zero_k_buckets_skipped(self, scheme):
        """k < nbuckets leaves some buckets with a zero budget; the
        session must skip them outright — no scheme ever sees k=0
        (``resolve_k`` floors every real reduction at one element) and a
        skipped bucket produces no traffic."""
        p, n = 2, 256
        lay = _layout(n)

        def prog(comm):
            kwargs = dict(SCHEME_KWARGS.get(scheme, {}))
            algo = make_allreduce(scheme, k=1, **kwargs)
            seen_k = []
            orig = algo._reduce

            def probe(comm_, acc, t):
                seen_k.append(algo.resolve_k(acc.size))
                return orig(comm_, acc, t)

            algo._reduce = probe
            res = run_session(algo, comm, lay, 1, _acc(comm.rank, n, 1),
                              bucket_size=16)
            return res, seen_k

        res, seen_k = run_spmd(p, prog)[0]
        assert sum(res.info["bucket_k"]) == 1
        assert res.update.nnz >= 1
        assert seen_k and all(k >= 1 for k in seen_k)
        skipped = [st for st in res.bucket_stats if st.k == 0]
        assert skipped and all(
            st.comm_time == 0.0 and st.words_recv == 0
            and st.info.get("skipped_zero_k") for st in skipped)

    def test_zero_k_buckets_send_nothing(self):
        """A skipped bucket contributes zero messages: total traffic
        equals that of a session over only the funded buckets."""
        p, n = 2, 256
        lay = _layout(n)

        def prog(comm):
            algo = make_allreduce("topka", k=1)
            run_session(algo, comm, lay, 1, _acc(comm.rank, n, 1),
                        bucket_size=16)
            return None

        spmd = run_spmd(p, prog)
        # one funded bucket -> one allgatherv round trip per rank pair
        assert int(spmd.stats.msgs_sent.sum()) == p * (p - 1)

    def test_push_order_enforced(self):
        lay = ParamLayout.from_sizes([4, 4])

        def prog(comm):
            algo = make_allreduce("topka", k=2)
            sess = algo.begin(comm, lay, 1)
            with pytest.raises(ValueError):
                sess.push(lay[0], np.zeros(4, np.float32))  # forward order
            sess.push(lay[1], np.zeros(4, np.float32))
            with pytest.raises(ValueError):
                sess.finish()  # incomplete
            sess.push(lay[0], np.zeros(4, np.float32))
            return sess.finish()

        run_spmd(1, prog)


# ---------------------------------------------------------------------------
# Overlap timeline
# ---------------------------------------------------------------------------
def _stat(release, comm):
    return BucketStat(lo=0, hi=1, nsegments=1, release_frac=release,
                      comm_time=comm)


class TestVisibleCommTime:
    def test_single_full_release_no_credit(self):
        assert visible_comm_time([_stat(1.0, 5.0)], 2.0, 2 / 3, 5.0) == 5.0

    def test_release_zero_reproduces_legacy_credit(self):
        # comm-bound: visible = comm - f*compute
        f, c, comm = 2 / 3, 3.0, 10.0
        got = visible_comm_time([_stat(0.0, comm)], c, f, comm)
        assert got == pytest.approx(comm - f * c)
        # compute-bound: fully hidden
        assert visible_comm_time([_stat(0.0, 1.0)], 3.0, f, 1.0) == 0.0

    def test_multi_bucket_release_zero_equals_legacy_any_regime(self):
        f, c = 0.5, 4.0
        for comms in ([0.5, 0.5, 0.5], [3.0, 3.0], [0.1, 5.0]):
            stats = [_stat(0.0, x) for x in comms]
            got = visible_comm_time(stats, c, f, sum(comms))
            assert got == pytest.approx(max(0.0, sum(comms) - f * c))

    def test_unattributed_comm_never_overlapped(self):
        got = visible_comm_time([_stat(0.0, 1.0)], 10.0, 1.0, 4.0)
        assert got == pytest.approx(3.0)  # 1.0 hidden, 3.0 unattributed

    def test_progressive_releases_chain(self):
        # two buckets, second released mid-backward; serialized comms
        stats = [_stat(0.5, 2.0), _stat(1.0, 2.0)]
        c, f = 4.0, 1.0
        # T1 = 2.0, finish1 = 4.0; T2 = 4.0, finish2 = 6.0 -> visible 2.0
        assert visible_comm_time(stats, c, f, 4.0) == pytest.approx(2.0)

    def test_no_stats_passthrough(self):
        assert visible_comm_time(None, 1.0, 0.5, 7.0) == 7.0
        assert visible_comm_time([], 1.0, 0.5, 7.0) == 7.0

    def test_f_zero_nothing_overlaps(self):
        """f=0: every release is the end of compute; comm fully visible
        regardless of release fractions."""
        for stats in ([_stat(0.0, 2.0)],
                      [_stat(0.0, 1.0), _stat(0.5, 2.0), _stat(1.0, 0.5)]):
            total = sum(st.comm_time for st in stats)
            got = visible_comm_time(stats, 4.0, 0.0, total)
            assert got == pytest.approx(total)

    def test_f_one_release_zero_fully_hidden(self):
        """f=1 + release 0: comm hides behind the whole compute."""
        assert visible_comm_time([_stat(0.0, 3.0)], 4.0, 1.0, 3.0) == 0.0
        # and sticks out only past compute when longer
        assert visible_comm_time([_stat(0.0, 6.0)], 4.0, 1.0, 6.0) \
            == pytest.approx(2.0)

    def test_f_clamped_outside_unit_interval(self):
        lo = visible_comm_time([_stat(0.0, 2.0)], 4.0, -3.0, 2.0)
        assert lo == visible_comm_time([_stat(0.0, 2.0)], 4.0, 0.0, 2.0)
        hi = visible_comm_time([_stat(0.0, 2.0)], 4.0, 9.0, 2.0)
        assert hi == visible_comm_time([_stat(0.0, 2.0)], 4.0, 1.0, 2.0)

    def test_comm_not_attributed_to_any_bucket(self):
        """Communication beyond the bucket sum is charged unoverlapped,
        even when the buckets themselves hide completely."""
        stats = [_stat(0.0, 1.0), _stat(0.2, 0.5)]
        # buckets hidden (f=1, compute 10); 2.5 of 4.0 unattributed
        got = visible_comm_time(stats, 10.0, 1.0, 4.0)
        assert got == pytest.approx(4.0 - 1.5)

    def test_zero_compute(self):
        stats = [_stat(0.0, 1.0), _stat(1.0, 2.0)]
        assert visible_comm_time(stats, 0.0, 1.0, 3.0) == pytest.approx(3.0)


# ---------------------------------------------------------------------------
# Trainer integration: generic overlap
# ---------------------------------------------------------------------------
def _train(scheme, p=2, iters=3, bucket_size=None, net=None, **cfg_kwargs):
    from repro.data import ShardedLoader, make_cifar_like
    from repro.nn.activation import ReLU
    from repro.nn.linear import Linear
    from repro.nn.losses import SoftmaxCrossEntropy
    from repro.nn.module import FlatModel, Flatten, Sequential
    from repro.train import Trainer, TrainerConfig

    def prog(comm):
        rng = np.random.default_rng(5)
        # several equal-width layers -> meaningful bucket release times
        mod = Sequential(Flatten(),
                         Linear(48, 32, rng=rng), ReLU(),
                         Linear(32, 32, rng=rng), ReLU(),
                         Linear(32, 32, rng=rng), ReLU(),
                         Linear(32, 10, rng=rng))
        model = FlatModel(mod, SoftmaxCrossEntropy(),
                          flops_per_sample=2.0 * 48 * 32 * 3)
        train, _ = make_cifar_like(32, 8, image_size=4, noise=0.5, seed=0)
        loader = ShardedLoader(train, 8, comm.rank, comm.size, seed=1)
        cfg = TrainerConfig(iterations=iters, scheme=scheme, lr=0.05,
                            density=0.05, bucket_size=bucket_size,
                            **cfg_kwargs)
        return Trainer(comm, model, loader, cfg).run()

    return run_spmd(p, prog, model=net)[0]


COMM_BOUND_NET = NetworkModel(alpha=5e-6, beta=5e-7, flop_time=2e-10)


class TestTrainerOverlap:
    def test_flat_model_layout_segments(self):
        from repro.nn.linear import Linear
        from repro.nn.losses import SoftmaxCrossEntropy
        from repro.nn.module import FlatModel, Sequential

        rng = np.random.default_rng(0)
        fm = FlatModel(Sequential(Linear(4, 3, rng=rng),
                                  Linear(3, 2, rng=rng)),
                       SoftmaxCrossEntropy())
        lay = fm.layout
        assert lay.n == fm.nparams
        assert len(lay) == 4  # two weights + two biases
        assert all("Linear" in s.name for s in lay)

    def test_dense_one_shot_default_no_credit(self):
        rec = _train("dense", net=COMM_BOUND_NET)
        for r in rec.records:
            assert r.overlap_saved == 0.0
            assert r.iteration_time == pytest.approx(
                r.compute_time + r.sparsify_time + r.comm_time)

    def test_dense_ovlp_credit_matches_legacy_formula(self):
        """The generic timeline reproduces the legacy DenseOvlp special
        case exactly: visible comm = max(0, comm - f*compute)."""
        f = 0.7
        for bs in (None, 24):
            rec = _train("dense_ovlp", net=COMM_BOUND_NET, bucket_size=bs,
                         overlap_backward_fraction=f)
            for r in rec.records:
                legacy = (r.compute_time + r.sparsify_time
                          + max(0.0, r.comm_time - f * r.compute_time))
                assert r.iteration_time == pytest.approx(legacy, rel=1e-9)
                assert r.overlap_saved > 0.0

    def test_dense_ovlp_session_equals_dense_bucketed_traffic(self):
        """DenseOvlp == dense + bucketing: same comm volume per record."""
        a = _train("dense_ovlp", net=COMM_BOUND_NET, bucket_size=24)
        b = _train("dense", net=COMM_BOUND_NET, bucket_size=24)
        for ra, rb in zip(a.records, b.records):
            assert ra.words_recv == rb.words_recv
            assert ra.comm_time == pytest.approx(rb.comm_time)
            assert ra.nbuckets == rb.nbuckets > 1
            # ovlp overlaps from backward start -> at least as much hidden
            assert ra.overlap_saved >= rb.overlap_saved

    def test_comm_bound_sparse_gains_overlap_from_bucketing(self):
        """A comm-bound sparse configuration gets faster iterations from
        the generic overlap (the acceptance-criterion scenario)."""
        one_shot = _train("topka", net=COMM_BOUND_NET, bucket_size=None)
        bucketed = _train("topka", net=COMM_BOUND_NET, bucket_size=1100)
        assert all(r.nbuckets > 1 for r in bucketed.records)
        assert all(r.overlap_saved > 0.0 for r in bucketed.records)
        assert bucketed.total_time < one_shot.total_time
        assert np.isfinite(bucketed.losses).all()

    def test_sparse_one_shot_unchanged_by_session_path(self):
        """bucket_size=None through the trainer == the pre-session
        behavior: no credit, comm fully visible."""
        rec = _train("topka", net=COMM_BOUND_NET)
        for r in rec.records:
            assert r.nbuckets == 1
            assert r.overlap_saved == 0.0

    def test_words_recv_is_per_iteration(self):
        """Regression: the record must hold the per-iteration receive
        volume, not the cumulative network counter."""
        rec = _train("topka", net=COMM_BOUND_NET, iters=4, bucket_size=24)
        vols = [r.words_recv for r in rec.records]
        assert all(v > 0 for v in vols)
        # steady state: same schedule + same k every iteration -> the
        # per-iteration volume is flat; a cumulative counter would grow
        # ~linearly with t (max ~= iters * min)
        assert max(vols) < 2 * min(vols)
        assert vols[1] == vols[2] == vols[3]


#: effectively uncontended: compute dominates, bucket comm is tiny and
#: spaced far apart on the backward timeline
ZERO_CONTENTION_NET = NetworkModel(alpha=1e-7, beta=1e-9, flop_time=5e-9)


class TestStreamingOverlap:
    """--overlap-mode stream: bucket reductions on the simulated clock."""

    def test_bad_overlap_mode_rejected(self):
        from repro.train import TrainerConfig
        with pytest.raises(ConfigError):
            TrainerConfig(iterations=1, overlap_mode="magic")

    def test_zero_contention_matches_analytic_replay(self):
        """With nothing to contend against, the streamed discrete-event
        timeline reproduces the analytic visible_comm_time replay."""
        an = _train("topka", p=4, bucket_size=24, net=ZERO_CONTENTION_NET)
        st = _train("topka", p=4, bucket_size=24, net=ZERO_CONTENTION_NET,
                    overlap_mode="stream")
        for ra, rs in zip(an.records, st.records):
            assert rs.nbuckets > 1
            assert rs.iteration_time == pytest.approx(ra.iteration_time,
                                                      rel=1e-12)
            # the recorded cross-check agrees with the measurement
            visible = rs.iteration_time - rs.compute_time - rs.sparsify_time
            assert visible == pytest.approx(rs.analytic_visible_comm,
                                            rel=1e-9, abs=1e-15)
            assert ra.analytic_visible_comm is None

    def test_comm_bound_stream_at_least_as_fast(self):
        """Comm-bound small-bucket topka at P=8 (the acceptance
        scenario): the streamed timeline pipelines the buckets at
        message granularity and beats the serial analytic replay.  (Not
        a universal law — interleaved multi-round collectives can also
        suffer head-of-line blocking; see the session module doc.)"""
        an = _train("topka", p=8, bucket_size=24, net=COMM_BOUND_NET)
        st = _train("topka", p=8, bucket_size=24, net=COMM_BOUND_NET,
                    overlap_mode="stream")
        for ra, rs in zip(an.records, st.records):
            assert rs.iteration_time <= ra.iteration_time * (1 + 1e-12)
            # results and traffic are mode-independent
            assert rs.loss == ra.loss
            assert rs.words_recv == ra.words_recv
            assert rs.nbuckets == ra.nbuckets > 1
        assert st.total_time < an.total_time

    def test_stream_results_bit_identical_to_analytic(self):
        """Overlap modes only re-time communication; updates, losses and
        wire traffic are unchanged."""
        an = _train("gtopk", p=4, bucket_size=24, net=COMM_BOUND_NET)
        st = _train("gtopk", p=4, bucket_size=24, net=COMM_BOUND_NET,
                    overlap_mode="stream")
        assert np.array_equal(an.losses, st.losses)
        for ra, rs in zip(an.records, st.records):
            assert ra.words_recv == rs.words_recv
            assert ra.selected == rs.selected

    def test_stream_one_bucket_degenerates_to_analytic(self):
        """bucket_size=None: the delegating adapter needs the full
        gradient, so streaming changes nothing (release 1.0)."""
        an = _train("topka", p=2, net=COMM_BOUND_NET)
        st = _train("topka", p=2, net=COMM_BOUND_NET,
                    overlap_mode="stream")
        for ra, rs in zip(an.records, st.records):
            assert rs.iteration_time == pytest.approx(ra.iteration_time,
                                                      rel=1e-12)
            assert rs.overlap_saved == 0.0

    def test_stream_oktopk_native_buckets(self):
        """oktopk streams natively: multi-bucket plans issue on the clock
        (no delegating fallback, no fallback flags)."""
        rec = _train("oktopk", p=2, bucket_size=64, net=COMM_BOUND_NET,
                     overlap_mode="stream",
                     scheme_kwargs={"tau": 2, "tau_prime": 2})
        assert np.isfinite(rec.losses).all()
        assert all(r.nbuckets > 1 for r in rec.records)
        assert not any(r.stream_fallback for r in rec.records)

    def test_stream_fallback_recorded_for_non_bucketable_scheme(self):
        """stream=True on a non-bucketable scheme is recorded: the
        delegated bucket carries info["stream_fallback"] and a one-time
        RuntimeWarning names the scheme."""
        import warnings as _warnings

        from repro.allreduce import TopkAAllreduce
        from repro.allreduce.session import _STREAM_FALLBACK_WARNED

        class NonBucketable(TopkAAllreduce):
            name = "topka_stream_fallback_test"
            bucketable = False

        n = 256
        lay = _layout(n)
        _STREAM_FALLBACK_WARNED.discard(NonBucketable.name)

        def prog(comm):
            algo = NonBucketable(density=0.1)
            res = run_session(algo, comm, lay, 1, _acc(comm.rank, n, 1),
                              bucket_size=64, stream=True)
            # second session: the warning is one-time per scheme
            res2 = run_session(algo, comm, lay, 2, _acc(comm.rank, n, 2),
                               bucket_size=64, stream=True)
            return res, res2

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            res, res2 = run_spmd(1, prog)[0]
        warned = [str(w.message) for w in caught
                  if issubclass(w.category, RuntimeWarning)]
        for r in (res, res2):
            assert len(r.bucket_stats) == 1
            assert r.bucket_stats[0].info.get("delegated")
            assert r.bucket_stats[0].info.get("stream_fallback")
        assert sum(NonBucketable.name in w for w in warned) == 1

    def test_stream_fallback_surfaces_in_iteration_records(self):
        """The trainer mirrors the session fallback flag into
        IterationRecord.stream_fallback (benchmark readers must be able
        to tell analytic timings from streamed ones)."""
        from repro.allreduce import TopkAAllreduce
        from repro.allreduce.registry import ALGORITHMS

        class NonBucketable(TopkAAllreduce):
            name = "topka_trainer_fallback_test"
            bucketable = False

        ALGORITHMS[NonBucketable.name] = NonBucketable
        try:
            rec = _train(NonBucketable.name, p=2, bucket_size=64,
                         net=COMM_BOUND_NET, overlap_mode="stream")
        finally:
            del ALGORITHMS[NonBucketable.name]
        assert all(r.stream_fallback for r in rec.records)
        assert all(r.nbuckets == 1 for r in rec.records)
        # analytic mode never sets the flag
        rec_an = _train("topka", p=2, bucket_size=64, net=COMM_BOUND_NET)
        assert not any(r.stream_fallback for r in rec_an.records)

    def test_stream_runner_equivalence(self):
        """Streamed timelines are schedule-independent like everything
        else: both runners agree bit-for-bit."""
        import os
        recs = {}
        for runner in ("coop", "threads"):
            os.environ["REPRO_SPMD_RUNNER"] = runner
            try:
                recs[runner] = _train("topka", p=4, bucket_size=24,
                                      net=COMM_BOUND_NET,
                                      overlap_mode="stream")
            finally:
                os.environ.pop("REPRO_SPMD_RUNNER", None)
        a, b = recs["coop"], recs["threads"]
        assert np.array_equal(a.losses, b.losses)
        for ra, rb in zip(a.records, b.records):
            assert ra.iteration_time == rb.iteration_time
            assert ra.comm_time == rb.comm_time
            assert ra.words_recv == rb.words_recv

    def test_stream_bucket_issue_times_on_backward_timeline(self):
        """Each bucket is issued exactly at its analytic release time
        ``T_b = compute * (1 - f * (1 - release_frac_b))`` when the
        trainer's pacer drives the pushes, and finish() leaves the clock
        past every bucket's comm-finish."""
        from repro.train.trainer import _BackwardPacer

        p, n, compute, f = 2, 256, 1e-3, 0.5
        lay = _layout(n)

        def prog(comm):
            algo = make_allreduce("topka", density=0.1)
            clock0 = comm.clock
            pacer = _BackwardPacer(comm, compute, f, lay.n)
            res = run_session(algo, comm, lay, 1, _acc(comm.rank, n, 1),
                              bucket_size=32, pacer=pacer)
            return clock0, comm.clock, res

        clock0, end, res = run_spmd(p, prog)[0]
        stats = res.bucket_stats
        assert len(stats) > 1
        for st in stats:
            expect = clock0 + compute * (1.0 - f * (1.0 - st.release_frac))
            assert st.info["t_issue"] == pytest.approx(expect, rel=1e-12)
            assert st.info["t_comm_finish"] >= st.info["t_issue"]
        # finish() waited for the last outstanding bucket and charged the
        # deferred selection cost on top
        sparsify = sum(st.sparsify_time for st in stats)
        latest = max(st.info["t_comm_finish"] for st in stats)
        assert end == pytest.approx(
            max(clock0 + compute, latest) + sparsify, rel=1e-12)


# ---------------------------------------------------------------------------
# CLI smoke for the new flags
# ---------------------------------------------------------------------------
class TestCliBucketed:
    def test_train_bucket_size_and_k(self, capsys):
        from repro.cli import main
        assert main(["train", "--workload", "perf_mlp", "--scheme",
                     "topka", "--workers", "2", "--iters", "3",
                     "--k", "256", "--bucket-size", "512"]) == 0
        out = capsys.readouterr().out
        assert "k=256" in out
        assert "buckets" in out

    def test_train_perf_mlp_default(self, capsys):
        from repro.cli import main
        assert main(["train", "--workload", "perf_mlp", "--workers", "2",
                     "--iters", "2"]) == 0
        assert "final loss" in capsys.readouterr().out

    def test_train_overlap_mode_stream(self, capsys):
        from repro.cli import main
        assert main(["train", "--workload", "perf_mlp", "--scheme",
                     "topka", "--workers", "2", "--iters", "2",
                     "--k", "64", "--bucket-size", "700",
                     "--overlap-mode", "stream"]) == 0
        out = capsys.readouterr().out
        assert "overlap=stream" in out
        assert "buckets" in out
