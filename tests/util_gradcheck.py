"""Shared numerical gradient checking for the nn layers."""

import numpy as np

from repro.nn import FlatModel, Loss, Module


class SumLoss(Loss):
    """loss = sum(out * w) for a fixed random weighting w — exercises the
    full Jacobian without softmax saturation."""

    def __init__(self, shape, seed=0):
        self.w = np.random.default_rng(seed).normal(
            size=shape).astype(np.float32)

    def forward_backward(self, out, y):
        return float(np.sum(out * self.w)), self.w.copy()


def gradcheck_model(module: Module, x: np.ndarray, *, n_checks: int = 12,
                    eps: float = 1e-2, rtol: float = 5e-2,
                    atol: float = 5e-3, seed: int = 0) -> None:
    """Compare FlatModel analytic gradients with central differences on a
    random subset of parameters (float32 tolerances)."""
    out_shape = module.forward(x, training=True).shape
    loss = SumLoss(out_shape, seed=seed)
    fm = FlatModel(module, loss)
    y = np.zeros(1)
    _, grad = fm.loss_and_grad(x, y)
    rng = np.random.default_rng(seed + 1)
    idxs = rng.choice(fm.nparams, size=min(n_checks, fm.nparams),
                      replace=False)
    for i in idxs:
        orig = fm.params_flat[i]
        fm.params_flat[i] = orig + eps
        lp, _ = fm.loss_and_grad(x, y)
        fm.params_flat[i] = orig - eps
        lm, _ = fm.loss_and_grad(x, y)
        fm.params_flat[i] = orig
        num = (lp - lm) / (2 * eps)
        ana = grad[i]
        assert abs(num - ana) <= atol + rtol * max(abs(num), abs(ana)), (
            f"param {i}: numeric {num:.5f} vs analytic {ana:.5f}")


def gradcheck_input(module: Module, x: np.ndarray, *, n_checks: int = 10,
                    eps: float = 1e-2, rtol: float = 5e-2,
                    atol: float = 5e-3, seed: int = 0) -> None:
    """Check the input gradient (backward's return value)."""
    out = module.forward(x, training=True)
    loss = SumLoss(out.shape, seed=seed)
    lval, dout = loss.forward_backward(out, None)
    dx = module.backward(dout)
    rng = np.random.default_rng(seed + 2)
    flat = x.reshape(-1)
    dflat = dx.reshape(-1)
    idxs = rng.choice(flat.size, size=min(n_checks, flat.size),
                      replace=False)
    for i in idxs:
        orig = flat[i]
        flat[i] = orig + eps
        lp = loss.forward_backward(module.forward(x, True), None)[0]
        flat[i] = orig - eps
        lm = loss.forward_backward(module.forward(x, True), None)[0]
        flat[i] = orig
        num = (lp - lm) / (2 * eps)
        ana = dflat[i]
        assert abs(num - ana) <= atol + rtol * max(abs(num), abs(ana)), (
            f"input {i}: numeric {num:.5f} vs analytic {ana:.5f}")
