"""Property tests for the size-adaptive allreduce algorithm selector.

Covers the ISSUE-7 selector contract: the latency-optimal schedule is
chosen below the network's alpha/beta crossover size and the
bandwidth-optimal one at/above it (pow2 and non-pow2 P), a forced
``algorithm=`` override always wins, and every dispatch records
(algorithm, selection-mode) provenance in ``Network.algorithm_log``.
"""

import numpy as np
import pytest

from repro.comm import collectives as coll
from repro.comm import run_spmd
from repro.comm.fused import (LATENCY_OPTIMAL, allreduce_alpha_beta_terms,
                              allreduce_analytic_seconds,
                              allreduce_crossover_words, bandwidth_optimal,
                              select_allreduce_algorithm)
from repro.comm.model import NetworkModel

PS = [2, 3, 4, 5, 6, 8, 12, 16, 24, 64]


class TestCrossover:
    @pytest.mark.parametrize("p", PS)
    def test_selection_flips_at_crossover(self, p):
        m = NetworkModel()
        x = allreduce_crossover_words(p, m)
        if not np.isfinite(x):
            # P = 2: recursive doubling is also bandwidth-optimal.
            assert p == 2
            for n in (1, 10**3, 10**9):
                assert select_allreduce_algorithm(p, n, m) == LATENCY_OPTIMAL
            return
        below, above = int(x * 0.5), int(np.ceil(x * 2))
        assert select_allreduce_algorithm(p, below, m) == LATENCY_OPTIMAL
        assert select_allreduce_algorithm(p, above, m) == bandwidth_optimal(p)
        # At the crossover itself the bandwidth-optimal schedule wins.
        assert select_allreduce_algorithm(
            p, int(np.ceil(x)), m) == bandwidth_optimal(p)

    @pytest.mark.parametrize("p", PS)
    def test_selected_algorithm_has_minimal_analytic_cost(self, p):
        m = NetworkModel()
        for n in (1, 64, 1024, 16384, 10**6):
            chosen = select_allreduce_algorithm(p, n, m)
            cost = allreduce_analytic_seconds(p, n, m, chosen)
            for other in (LATENCY_OPTIMAL, bandwidth_optimal(p)):
                assert cost <= allreduce_analytic_seconds(p, n, m, other) \
                    * (1 + 1e-12)

    def test_crossover_scales_with_alpha_beta_ratio(self):
        base = NetworkModel()
        chatty = NetworkModel(alpha=base.alpha * 10, beta=base.beta)
        fat = NetworkModel(alpha=base.alpha, beta=base.beta * 10)
        x0 = allreduce_crossover_words(4, base)
        assert allreduce_crossover_words(4, chatty) == pytest.approx(x0 * 10)
        assert allreduce_crossover_words(4, fat) == pytest.approx(x0 / 10)

    def test_zero_beta_never_crosses(self):
        m = NetworkModel(beta=0.0)
        assert allreduce_crossover_words(8, m) == float("inf")
        assert select_allreduce_algorithm(8, 10**9, m) == LATENCY_OPTIMAL

    def test_zero_alpha_always_bandwidth(self):
        m = NetworkModel(alpha=0.0)
        assert select_allreduce_algorithm(8, 1, m) == bandwidth_optimal(8)

    @pytest.mark.parametrize("p", PS)
    def test_alpha_beta_terms_roles(self, p):
        a_l, b_l = allreduce_alpha_beta_terms(p, LATENCY_OPTIMAL)
        a_b, b_b = allreduce_alpha_beta_terms(p, bandwidth_optimal(p))
        assert a_l <= a_b       # latency role: fewer latency terms
        assert b_b <= b_l       # bandwidth role: no more volume terms
        if p > 2:
            assert b_b < b_l    # strictly cheaper volume beyond P=2

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError):
            allreduce_alpha_beta_terms(4, "nope")


def _allreduce_program(comm, n, algorithm):
    x = np.arange(n, dtype=np.float32) + comm.rank
    return coll.allreduce(comm, x, algorithm=algorithm)


def _run(p, n, algorithm, **kw):
    return run_spmd(p, _allreduce_program, n, algorithm, **kw)


class TestDispatch:
    @pytest.mark.parametrize("p", [3, 4])
    @pytest.mark.parametrize("algorithm",
                             ["adaptive", "latency", "bandwidth", "auto"])
    def test_results_correct(self, p, algorithm):
        n = 257
        res = _run(p, n, algorithm)
        want = p * np.arange(n, dtype=np.float32) + sum(range(p))
        for r in range(p):
            np.testing.assert_allclose(res[r], want, rtol=1e-5)

    def test_adaptive_picks_by_size(self):
        m = NetworkModel()
        x = allreduce_crossover_words(4, m)
        small = _run(4, int(x * 0.25), "adaptive").network
        large = _run(4, int(x * 4), "adaptive").network
        assert ("allreduce", LATENCY_OPTIMAL, "adaptive") \
            in small.algorithm_log
        assert ("allreduce", "rabenseifner", "adaptive") \
            in large.algorithm_log

    @pytest.mark.parametrize("forced", ["ring", "recursive_doubling",
                                        "rabenseifner"])
    def test_forced_override_always_wins(self, forced):
        # A tiny message (deep in the latency regime) still uses the
        # forced schedule — provenance AND the wire schedule agree.
        net = _run(4, 8, forced).network
        assert list(net.algorithm_log) == [("allreduce", forced, "forced")]
        msgs_per_rank = {"recursive_doubling": 2,  # log2(4) exchanges
                         "rabenseifner": 4,        # 2 halving + 2 doubling
                         "ring": 6}[forced]        # 2 * (P - 1)
        assert list(net.stats().msgs_sent) == [msgs_per_rank] * 4

    def test_role_aliases_map_to_concrete_schedules(self):
        net = _run(4, 8, "latency").network
        assert ("allreduce", LATENCY_OPTIMAL, "forced") in net.algorithm_log
        net = _run(4, 8, "bandwidth").network
        assert ("allreduce", "rabenseifner", "forced") in net.algorithm_log
        net = _run(6, 8, "bandwidth").network  # non-pow2 -> ring
        assert ("allreduce", "ring", "forced") in net.algorithm_log

    def test_auto_mode_recorded(self):
        net = _run(4, 8, "auto").network
        assert ("allreduce", "rabenseifner", "auto") in net.algorithm_log

    def test_unknown_algorithm_raises(self):
        with pytest.raises(Exception):
            _run(2, 8, "not_an_algorithm")

    def test_provenance_accumulates_and_resets(self):
        def program(comm):
            x = np.ones(16, dtype=np.float32)
            coll.allreduce(comm, x, algorithm="ring")
            coll.allreduce(comm, x, algorithm="ring")
            return None

        res = run_spmd(4, program)
        entry = res.network.algorithm_log[("allreduce", "ring", "forced")]
        assert entry == {"calls": 2, "words": 32}
        assert res.network.algorithm_provenance() == {
            "allreduce/ring/forced": {"calls": 2, "words": 32}}
        res.network.reset_stats()
        assert res.network.algorithm_log == {}

    @pytest.mark.parametrize("runner", ["coop", "threads"])
    def test_provenance_identical_across_runners_and_fused(self, runner):
        logs = []
        for fused in (True, False):
            net = _run(5, 4096, "adaptive", runner=runner,
                       fused=fused).network
            logs.append(net.algorithm_log)
        assert logs[0] == logs[1]

    def test_positional_algo_argument_still_works(self):
        def program(comm):
            return coll.allreduce(comm, np.ones(8, dtype=np.float32),
                                  np.add, "ring")

        res = run_spmd(3, program)
        np.testing.assert_allclose(res[0], 3 * np.ones(8))
        assert ("allreduce", "ring", "forced") in res.network.algorithm_log
